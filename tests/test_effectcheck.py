"""Runtime verification of purity certificates (REPRO_VERIFY_EFFECTS).

Three layers: an instrumented run of the real simulator stays clean
(the certificates hold at runtime, not just statically); an injected
mutation in a certified hook raises :class:`EffectViolation` at the
call; and the instrumented run remains bit-identical to the bare run.
"""

from __future__ import annotations

import pytest

from repro.analysis.effectcheck import (
    EffectViolation,
    enabled,
    instrument_system,
)
from repro.config import DramConfig, SystemConfig
from repro.cpu.instruction import INT, LOAD, Trace
from repro.sim.system import System


def small_traces(cores=2, n=400):
    traces = []
    for c in range(cores):
        t = Trace(f"t{c}")
        addr = (c + 1) << 30
        for i in range(n):
            if i % 5 == 0:
                t.append(LOAD, 10 + (i % 5), addr, 0)
                addr += 4096 + 64
            else:
                t.append(INT, 100 + (i % 9), 0, 1)
        traces.append(t)
    return traces


def make_system(**kwargs):
    cfg = SystemConfig(cores=2, dram=DramConfig(channels=2))
    return System(cfg, small_traces(), **kwargs)


class TestEnvKnob:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_EFFECTS", raising=False)
        assert not enabled()
        monkeypatch.setenv("REPRO_VERIFY_EFFECTS", "0")
        assert not enabled()

    def test_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_EFFECTS", "1")
        assert enabled()

    def test_system_instruments_itself_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_EFFECTS", "1")
        system = make_system()
        assert any(
            hasattr(ch.next_wake, "__wrapped_for_effects__")
            for ch in system.memory.channels
        )


class TestCertificatesHoldAtRuntime:
    def test_instrumented_run_is_clean_and_bit_identical(self):
        bare = make_system().run(max_cycles=400_000)
        system = make_system()
        wrapped = instrument_system(system)
        assert wrapped >= 7  # 2 channels x 3 + 2 cores + hierarchy
        checked = system.run(max_cycles=400_000)
        assert not checked.hit_max_cycles
        assert checked.cycles == bare.cycles
        assert checked.finish_cycles == bare.finish_cycles

    def test_every_engine_stays_clean(self):
        for engine in ("naive", "fast", "event"):
            system = make_system()
            instrument_system(system, every=3)
            result = system.run(max_cycles=400_000, engine=engine)
            assert not result.hit_max_cycles, engine


class TestInjectedViolation:
    def test_mutating_next_wake_is_caught(self):
        system = make_system()
        channel = system.memory.channels[0]
        real = channel.next_wake

        def poisoned(dram_now):
            channel._seq += 1  # the undeclared mutation SEM030 also flags
            return real(dram_now)

        channel.next_wake = poisoned
        instrument_system(system)
        with pytest.raises(EffectViolation) as err:
            system.run(max_cycles=400_000)
        assert "next_wake" in str(err.value)

    def test_sampling_still_catches_repeated_mutation(self):
        system = make_system()
        channel = system.memory.channels[0]
        real = channel.can_accept

        def poisoned(*args, **kwargs):
            channel._seq += 1
            return real(*args, **kwargs)

        channel.can_accept = poisoned
        instrument_system(system, every=4)
        with pytest.raises(EffectViolation):
            system.run(max_cycles=400_000)
