"""Channel controller: queues, command legality, refresh, write handling."""

import pytest

from repro.config import DDR3_2133, DramConfig
from repro.dram.command import CommandKind
from repro.dram.controller import ChannelController, MemorySystem
from repro.sched.base import Scheduler
from repro.sched.frfcfs import FrFcfsScheduler


class LegalityChecker(Scheduler):
    """Wraps FR-FCFS and asserts every offered candidate is legal."""

    def __init__(self):
        self.inner = FrFcfsScheduler()
        self.checked = 0

    def select(self, candidates, controller, now):
        timing = controller.timing
        for cand in candidates:
            bank = controller.banks[cand.rank][cand.bank]
            if cand.kind == CommandKind.READ:
                assert bank.open_row == cand.row
                assert now >= bank.cas_ready
                assert timing.cas_issue_ok(cand.rank, False, now)
            elif cand.kind == CommandKind.WRITE:
                assert bank.open_row == cand.row
                assert timing.cas_issue_ok(cand.rank, True, now)
            elif cand.kind == CommandKind.ACTIVATE:
                assert bank.open_row is None
                assert now >= bank.act_ready
                assert timing.can_activate(cand.rank, now)
            elif cand.kind == CommandKind.PRECHARGE:
                assert bank.open_row is not None
                assert now >= bank.pre_ready
            self.checked += 1
        return self.inner.select(candidates, controller, now)


def make_memsys(scheduler_cls=FrFcfsScheduler, **dram_kwargs):
    return MemorySystem(DramConfig(**dram_kwargs), lambda c: scheduler_cls())


def drain(memsys, reads, max_dram_cycles=50_000):
    """Step until all the given read transactions complete."""
    done = []
    for txn in reads:
        txn.callback = lambda d, t=txn: done.append((t, d))
    cycle = 0
    while len(done) < len(reads) and cycle < max_dram_cycles * 4:
        memsys.step(cycle)
        cycle += 1
    return done


class TestRowTrain:
    def test_sequential_lines_are_row_hits(self):
        memsys = make_memsys()
        base = 7 * 1024 * 1024
        txns = [memsys.make_transaction(base + k * 64, core=0) for k in range(8)]
        for txn in txns:
            assert memsys.try_enqueue(txn, 0)
        done = drain(memsys, txns)
        assert len(done) == 8
        ch = memsys.channels[txns[0].loc.channel]
        assert ch.stats.activates == 1
        assert ch.stats.row_hit_reads == 7

    def test_row_hits_spaced_by_tccd(self):
        memsys = make_memsys()
        base = 11 * 1024 * 1024
        txns = [memsys.make_transaction(base + k * 64, core=0) for k in range(4)]
        for txn in txns:
            memsys.try_enqueue(txn, 0)
        done = drain(memsys, txns)
        times = sorted(d for _t, d in done)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == DDR3_2133.tCCD for g in gaps)


class TestLegality:
    def test_all_candidates_legal_under_load(self):
        memsys = make_memsys(LegalityChecker)
        import random

        rng = random.Random(3)
        txns = []
        cycle = 0
        for i in range(120):
            txn = memsys.make_transaction(
                rng.randrange(1 << 28) & ~63,
                core=i % 4,
                is_write=(i % 5 == 0),
            )
            if memsys.try_enqueue(txn, cycle):
                if not txn.is_write:
                    txns.append(txn)
        done = drain(memsys, txns)
        assert len(done) == len(txns)
        assert any(ch.scheduler.checked > 0 for ch in memsys.channels)


class TestRefresh:
    def test_refreshes_happen(self):
        memsys = make_memsys()
        # Step past several refresh intervals with an empty queue.
        interval = DDR3_2133.refresh_interval_cycles
        for cycle in range(0, interval * 4 * 6):
            memsys.step(cycle)
        total = sum(ch.stats.refreshes for ch in memsys.channels)
        assert total > 0

    def test_refresh_blocks_bank(self):
        memsys = make_memsys(**{"ranks_per_channel": 1})
        interval = DDR3_2133.refresh_interval_cycles
        # Run past a refresh, then issue a read: it must still complete.
        for cycle in range(0, (interval + 10) * 4):
            memsys.step(cycle)
        txn = memsys.make_transaction(0, core=0)
        assert memsys.try_enqueue(txn, (interval + 10) * 4)
        done = []
        txn.callback = lambda d: done.append(d)
        cycle = (interval + 10) * 4
        while not done and cycle < (interval + 2000) * 4:
            memsys.step(cycle)
            cycle += 1
        assert done


class TestQueueCapacity:
    def test_rejects_when_full(self):
        memsys = make_memsys(**{"transaction_queue_entries": 4})
        accepted = 0
        for k in range(10):
            txn = memsys.make_transaction(k * 1024 * 4, core=0)  # channel 0
            if memsys.try_enqueue(txn, 0):
                accepted += 1
        assert accepted == 4

    def test_write_queue_separate_capacity(self):
        memsys = make_memsys(**{"transaction_queue_entries": 2})
        r = memsys.make_transaction(0, core=0)
        w = memsys.make_transaction(4096 * 4, is_write=True)
        r2 = memsys.make_transaction(8192 * 4, core=0)
        assert memsys.try_enqueue(r, 0)
        assert memsys.try_enqueue(w, 0)
        assert memsys.try_enqueue(r2, 0)


class TestWrites:
    def test_writes_complete(self):
        memsys = make_memsys()
        done = []
        txns = []
        for k in range(6):
            txn = memsys.make_transaction(
                (1 << 22) + k * 64, is_write=True,
                callback=lambda d: done.append(d),
            )
            assert memsys.try_enqueue(txn, 0)
            txns.append(txn)
        cycle = 0
        while len(done) < 6 and cycle < 100_000:
            memsys.step(cycle)
            cycle += 1
        assert len(done) == 6

    def test_unified_queue_mixes_writes_with_reads(self):
        memsys = make_memsys()
        assert memsys.config.unified_queue
        w = memsys.make_transaction(1 << 22, is_write=True)
        memsys.try_enqueue(w, 0)
        ch = memsys.channels[w.loc.channel]
        assert ch._drain_writes_now()


class TestSequenceNumbers:
    def test_monotone_arrival_seq(self):
        memsys = make_memsys()
        txns = [memsys.make_transaction(k * 4096 * 4, core=0) for k in range(5)]
        for txn in txns:
            memsys.try_enqueue(txn, 0)
        seqs = [t.seq for t in txns]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestStats:
    def test_busy_and_occupancy_counted(self):
        memsys = make_memsys()
        txns = [memsys.make_transaction((1 << 24) + k * 64, core=0) for k in range(4)]
        for txn in txns:
            memsys.try_enqueue(txn, 0)
        drain(memsys, txns)
        ch = memsys.channels[txns[0].loc.channel]
        assert ch.stats.busy_cycles > 0
        assert ch.stats.queue_samples > 0
        assert ch.stats.reads_done == 4
