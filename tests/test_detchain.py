"""Determinism hash-chain: skip and naive loops must chain identically.

Unit tests for the rolling FNV digest and divergence search, then the
load-bearing regression: the chain recorded by a fast-forwarded run is
bit-identical to the cycle-by-cycle run's — so a future skip-path bug
that leaves architectural state subtly different is pinned to the first
diverging sample window instead of surfacing as a mystery stat diff.
"""

from __future__ import annotations

import pytest

from repro.analysis.detchain import (
    _CHECKPOINT_CAP,
    DetChain,
    first_divergence,
    interval,
)
from repro.config import SimScale, SystemConfig
from repro.sim.system import System
from repro.workloads.parallel import parallel_traces

SCALE = SimScale(instructions_per_core=800, warmup_instructions=0, seed=11)


def make_system(app="fft", seed=None, scheduler="fr-fcfs"):
    config = SystemConfig.parallel_default()
    traces = parallel_traces(
        app, config.cores, SCALE.instructions_per_core,
        seed=SCALE.seed if seed is None else seed,
    )
    return System(config, traces, scheduler=scheduler)


class TestDetChain:
    def test_same_samples_same_digest(self):
        a, b = DetChain(16), DetChain(16)
        for cycle in range(16, 160, 16):
            a.sample(cycle, (1, 2, cycle))
            b.sample(cycle, (1, 2, cycle))
        assert a.digest == b.digest
        assert a.checkpoints == b.checkpoints

    def test_any_word_changes_digest(self):
        a, b = DetChain(16), DetChain(16)
        a.sample(16, (1, 2, 3))
        b.sample(16, (1, 2, 4))
        assert a.digest != b.digest

    def test_order_sensitive(self):
        a, b = DetChain(16), DetChain(16)
        a.sample(16, (1, 2))
        b.sample(16, (2, 1))
        assert a.digest != b.digest

    def test_negative_and_large_words_fold(self):
        chain = DetChain(16)
        chain.sample(16, (-1, 1 << 80, 0))
        assert 0 < chain.digest < 1 << 64

    def test_inlined_sample_matches_per_word_fold(self):
        """The hot-path sample (inlined fold) must stay bit-identical to
        the per-word _fold reference, including edge-case words."""
        a, b = DetChain(16), DetChain(16)
        words = (0, 1, -1, 255, 256, 1 << 63, (1 << 64) - 1, 1 << 80, -42)
        for cycle in range(16, 96, 16):
            a.sample(cycle, words)
            b.fold_words(cycle, words)
        assert a.digest == b.digest
        assert a.checkpoints == b.checkpoints
        assert a.samples == b.samples

    def test_checkpoints_stay_bounded(self):
        chain = DetChain(1)
        for cycle in range(3 * _CHECKPOINT_CAP):
            chain.sample(cycle, (cycle,))
        assert len(chain.checkpoints) <= _CHECKPOINT_CAP
        cycles = [c for c, _ in chain.checkpoints]
        assert cycles == sorted(cycles)

    def test_finalize_always_appends(self):
        chain = DetChain(16)
        chain.finalize(99, (5,))
        assert chain.checkpoints[-1][0] == 99

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            DetChain(0)


class TestFirstDivergence:
    def test_identical_chains(self):
        chain = [(16, 10), (32, 20)]
        assert first_divergence(chain, list(chain)) is None

    def test_digest_divergence(self):
        a = [(16, 10), (32, 20), (48, 30)]
        b = [(16, 10), (32, 21), (48, 31)]
        where = first_divergence(a, b)
        assert where["cycle"] == 32 and where["kind"] == "digest"

    def test_sample_cycle_divergence(self):
        where = first_divergence([(16, 10)], [(18, 10)])
        assert where["kind"] == "sample-cycle" and where["cycle"] == 16

    def test_length_divergence(self):
        where = first_divergence([(16, 10)], [(16, 10), (32, 20)])
        assert where["kind"] == "length" and where["cycle"] == 32

    def test_empty_chains_agree(self):
        assert first_divergence([], [(16, 10)]) is None


class TestInterval:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DETCHAIN_EVERY", raising=False)
        assert interval() == 1024

    def test_override_and_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "256")
        assert interval() == 256
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "0")
        assert interval() == 0

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "soon")
        with pytest.raises(ValueError):
            interval()

    def test_disabled_runs_record_no_chain(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "0")
        result = make_system().run()
        assert result.det_chain is None
        assert result.det_checkpoints == []


class TestSkipIdentity:
    """The tentpole contract: chains are skip-mode and process invariant."""

    @pytest.mark.parametrize("case", [
        {},
        {"app": "radix", "scheduler": "par-bs"},
        {"app": "ocean", "scheduler": "tcm"},
    ], ids=lambda c: c.get("app", "fft") + "/" + c.get("scheduler", "fr-fcfs"))
    def test_skip_equals_naive(self, case, monkeypatch):
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "256")
        naive = make_system(**case).run(skip_cycles=False)
        fast = make_system(**case).run(skip_cycles=True)
        assert naive.det_chain == fast.det_chain
        assert naive.det_checkpoints == fast.det_checkpoints
        assert naive.det_chain is not None

    def test_different_seeds_diverge(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "256")
        a = make_system(seed=11).run()
        b = make_system(seed=12).run()
        assert a.det_chain != b.det_chain
        where = first_divergence(a.det_checkpoints, b.det_checkpoints)
        assert where is not None

    def test_different_schedulers_diverge(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETCHAIN_EVERY", "256")
        a = make_system(scheduler="fr-fcfs").run()
        b = make_system(scheduler="par-bs").run()
        assert a.det_chain != b.det_chain

    def test_chain_in_fingerprint(self):
        from repro.sim.stats import result_fingerprint

        result = make_system().run()
        assert result.det_chain in result_fingerprint(result)


class TestVerifyDeterminism:
    def test_inline_report_ok(self, monkeypatch):
        from repro.sim.engine import RunSpec, verify_determinism

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        spec = RunSpec(kind="parallel", workload="fft", scale=SCALE)
        report = verify_determinism(spec, subprocess=False)
        assert report["ok"]
        assert report["chain"] is not None
        names = [entry["name"] for entry in report["runs"]]
        assert any("cycle-by-cycle" in name for name in names)
        assert all(entry["ok"] for entry in report["runs"])

    def test_subprocess_comparison(self, monkeypatch):
        from repro.sim.engine import RunSpec, verify_determinism

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        spec = RunSpec(kind="parallel", workload="fft", scale=SCALE)
        report = verify_determinism(spec, subprocess=True)
        assert report["ok"]
        assert any("subprocess" in entry["name"] for entry in report["runs"])
