"""Scheduler selection policies, tested against fabricated queue states."""

import pytest

from repro.config import DramConfig
from repro.core.critsched import CasRasCritScheduler, CritCasRasScheduler
from repro.dram.addressmap import DramLocation
from repro.dram.command import CandidateCommand, CommandKind
from repro.dram.transaction import Transaction
from repro.sched.fcfs import FcfsScheduler
from repro.sched.frfcfs import FrFcfsScheduler


class FakeController:
    """Just enough controller surface for scheduler unit tests."""

    def __init__(self, reads=()):
        self.read_queue = list(reads)
        self.write_queue = []
        self.banks = None


def txn(seq, core=0, critical=False, magnitude=0, is_write=False):
    t = Transaction(0, DramLocation(0, 0, 0, 0, 0), is_write=is_write,
                    core=core, critical=critical, magnitude=magnitude)
    t.seq = seq
    t.arrival = 0
    return t


def cas(t):
    return CandidateCommand(
        CommandKind.WRITE if t.is_write else CommandKind.READ, t, 0, 0, 0
    )


def ras(t):
    return CandidateCommand(CommandKind.ACTIVATE, t, 0, 0, 0)


class TestFrFcfs:
    def test_cas_beats_older_ras(self):
        sched = FrFcfsScheduler()
        a, b = txn(1), txn(2)
        chosen = sched.select([ras(a), cas(b)], FakeController([a, b]), 0)
        assert chosen.is_cas

    def test_oldest_cas_wins(self):
        sched = FrFcfsScheduler()
        a, b = txn(5), txn(2)
        chosen = sched.select([cas(a), cas(b)], FakeController([a, b]), 0)
        assert chosen.txn.seq == 2

    def test_oldest_ras_when_no_cas(self):
        sched = FrFcfsScheduler()
        a, b = txn(5), txn(2)
        chosen = sched.select([ras(a), ras(b)], FakeController([a, b]), 0)
        assert chosen.txn.seq == 2


class TestFcfs:
    def test_strictly_oldest(self):
        sched = FcfsScheduler()
        a, b = txn(5), txn(2)
        chosen = sched.select([cas(a), ras(b)], FakeController([a, b]), 0)
        assert chosen.txn.seq == 2


class TestCasRasCrit:
    def test_critical_cas_beats_older_noncritical_cas(self):
        sched = CasRasCritScheduler()
        old = txn(1, core=0)
        crit = txn(2, core=1, critical=True, magnitude=400)
        ctrl = FakeController([old, crit])
        chosen = sched.select([cas(old), cas(crit)], ctrl, 0)
        assert chosen.txn is crit

    def test_noncritical_cas_beats_critical_ras(self):
        sched = CasRasCritScheduler()
        nc = txn(1, core=0)
        crit = txn(2, core=1, critical=True, magnitude=400)
        ctrl = FakeController([nc, crit])
        chosen = sched.select([cas(nc), ras(crit)], ctrl, 0)
        assert chosen.txn is nc

    def test_magnitude_orders_critical_cas(self):
        sched = CasRasCritScheduler(magnitude_shift=0)
        lo = txn(1, core=0, critical=True, magnitude=50)
        hi = txn(2, core=1, critical=True, magnitude=500)
        ctrl = FakeController([lo, hi])
        chosen = sched.select([cas(lo), cas(hi)], ctrl, 0)
        assert chosen.txn is hi

    def test_magnitude_bucketing_preserves_age_order(self):
        sched = CasRasCritScheduler(magnitude_shift=5)
        older = txn(1, core=0, critical=True, magnitude=100)
        newer = txn(2, core=1, critical=True, magnitude=110)  # same bucket
        ctrl = FakeController([older, newer])
        chosen = sched.select([cas(older), cas(newer)], ctrl, 0)
        assert chosen.txn is older

    def test_within_core_age_order_never_inverted(self):
        # A core's younger request with a larger magnitude must not beat
        # its own older request (prefix-max urgency).
        sched = CasRasCritScheduler(magnitude_shift=0)
        older = txn(1, core=0, critical=True, magnitude=10)
        newer = txn(2, core=0, critical=True, magnitude=900)
        ctrl = FakeController([older, newer])
        chosen = sched.select([cas(older), cas(newer)], ctrl, 0)
        assert chosen.txn is older

    def test_cross_core_uses_own_magnitude_at_head(self):
        sched = CasRasCritScheduler(magnitude_shift=0)
        a = txn(1, core=0, critical=True, magnitude=10)
        b = txn(2, core=1, critical=True, magnitude=900)
        ctrl = FakeController([a, b])
        chosen = sched.select([cas(a), cas(b)], ctrl, 0)
        assert chosen.txn is b

    def test_writes_lowest_within_cas(self):
        sched = CasRasCritScheduler()
        w = txn(1, is_write=True)
        crit = txn(2, core=1, critical=True, magnitude=100)
        ctrl = FakeController([crit])
        chosen = sched.select([cas(w), cas(crit)], ctrl, 0)
        assert chosen.txn is crit

    def test_starvation_cap_promotes(self):
        sched = CasRasCritScheduler(starvation_cap=100)
        starved = txn(1, core=0)
        starved.arrival = 0
        crit = txn(2, core=1, critical=True, magnitude=400)
        ctrl = FakeController([starved, crit])
        chosen = sched.select([cas(starved), cas(crit)], ctrl, now=200)
        assert chosen.txn is starved
        assert sched.promotions == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CasRasCritScheduler(starvation_cap=0)
        with pytest.raises(ValueError):
            CasRasCritScheduler(magnitude_shift=-1)


class TestCritCasRas:
    def test_critical_ras_beats_noncritical_cas(self):
        sched = CritCasRasScheduler()
        nc = txn(1, core=0)
        crit = txn(2, core=1, critical=True, magnitude=400)
        ctrl = FakeController([nc, crit])
        chosen = sched.select([cas(nc), ras(crit)], ctrl, 0)
        assert chosen.txn is crit

    def test_critical_cas_beats_critical_ras(self):
        sched = CritCasRasScheduler()
        a = txn(1, core=0, critical=True, magnitude=400)
        b = txn(2, core=1, critical=True, magnitude=400)
        ctrl = FakeController([a, b])
        chosen = sched.select([ras(a), cas(b)], ctrl, 0)
        assert chosen.txn is b

    def test_noncritical_cas_before_noncritical_ras(self):
        sched = CritCasRasScheduler()
        a, b = txn(1), txn(2)
        ctrl = FakeController([a, b])
        chosen = sched.select([ras(a), cas(b)], ctrl, 0)
        assert chosen.txn is b
