"""End-to-end system runs."""

import pytest

from repro.config import DramConfig, SimScale, SystemConfig
from repro.cpu.instruction import INT, LOAD, Trace
from repro.sim.runner import (
    run_application_alone,
    run_multiprogrammed_workload,
    run_parallel_workload,
)
from repro.sim.system import System, make_provider_factory
from repro.workloads.synthetic import clear_trace_cache

TINY = SimScale(instructions_per_core=800, warmup_instructions=100)


@pytest.fixture(autouse=True)
def _fresh():
    clear_trace_cache()
    yield
    clear_trace_cache()


def small_traces(cores=2, n=600):
    traces = []
    for c in range(cores):
        t = Trace(f"t{c}")
        addr = (c + 1) << 30
        for i in range(n):
            if i % 7 == 0:
                t.append(LOAD, 10 + (i % 5), addr, 0)
                addr += 4096 + 64
            else:
                t.append(INT, 100 + (i % 9), 0, 1)
        traces.append(t)
    return traces


class TestSystem:
    def test_runs_to_completion(self):
        cfg = SystemConfig(cores=2, dram=DramConfig(channels=2))
        system = System(cfg, small_traces())
        result = system.run(max_cycles=500_000)
        assert not result.hit_max_cycles
        assert result.total_committed == 1200
        assert all(f > 0 for f in result.finish_cycles)

    def test_trace_count_must_match_cores(self):
        cfg = SystemConfig(cores=4)
        with pytest.raises(ValueError):
            System(cfg, small_traces(cores=2))

    def test_deterministic(self):
        cfg = SystemConfig(cores=2, dram=DramConfig(channels=2))
        r1 = System(cfg, small_traces()).run(max_cycles=500_000)
        r2 = System(cfg, small_traces()).run(max_cycles=500_000)
        assert r1.cycles == r2.cycles
        assert r1.finish_cycles == r2.finish_cycles

    def test_max_cycles_cap(self):
        cfg = SystemConfig(cores=2, dram=DramConfig(channels=2))
        result = System(cfg, small_traces()).run(max_cycles=50)
        assert result.hit_max_cycles

    def test_empty_trace_core_finishes_immediately(self):
        cfg = SystemConfig(cores=2, dram=DramConfig(channels=2))
        traces = [small_traces(1)[0], Trace("idle")]
        result = System(cfg, traces).run(max_cycles=500_000)
        assert result.committed[1] == 0
        assert result.finish_cycles[1] <= result.finish_cycles[0]

    def test_scheduler_selected_by_name(self):
        cfg = SystemConfig(cores=2, dram=DramConfig(channels=2))
        system = System(cfg, small_traces(), scheduler="tcm",
                        scheduler_kwargs={"threads": 2})
        from repro.sched.tcm import TcmScheduler

        assert isinstance(system.memory.channels[0].scheduler, TcmScheduler)

    def test_unknown_scheduler_raises(self):
        cfg = SystemConfig(cores=2, dram=DramConfig(channels=2))
        with pytest.raises(ValueError):
            System(cfg, small_traces(), scheduler="nope")


class TestProviderFactory:
    def test_null_spec(self):
        from repro.core.provider import NullProvider

        factory = make_provider_factory(None)
        assert isinstance(factory(0), NullProvider)

    def test_cbp_spec(self):
        from repro.core.provider import CbpProvider

        factory = make_provider_factory(("cbp", {"entries": 64}))
        p0, p1 = factory(0), factory(1)
        assert isinstance(p0, CbpProvider)
        assert p0 is not p1  # per-core predictors

    def test_callable_spec(self):
        sentinel = object()
        factory = make_provider_factory(lambda core: sentinel)
        assert factory(3) is sentinel

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_provider_factory(("nope", {}))


class TestRunners:
    def test_parallel_runner(self):
        result = run_parallel_workload("radix", scale=TINY)
        assert not result.hit_max_cycles
        assert result.total_committed == 8 * 900

    def test_parallel_with_criticality(self):
        result = run_parallel_workload(
            "radix", scheduler="casras-crit",
            provider_spec=("cbp", {"entries": 64}), scale=TINY,
        )
        assert not result.hit_max_cycles
        assert sum(s.critical_loads_sent for s in result.core_stats) > 0

    def test_multiprogrammed_runner(self):
        result = run_multiprogrammed_workload("AELV", scale=TINY)
        assert not result.hit_max_cycles
        assert len(result.committed) == 4

    def test_alone_runner(self):
        result = run_application_alone("AELV", slot=1, scale=TINY)
        assert result.committed[1] == 900
        assert result.committed[0] == 0

    def test_naive_provider_end_to_end(self):
        result = run_parallel_workload(
            "radix", scheduler="casras-crit",
            provider_spec=("naive", {}), scale=TINY,
        )
        assert not result.hit_max_cycles


class TestSchedulerEndToEnd:
    @pytest.mark.parametrize("sched,kwargs", [
        ("fcfs", None),
        ("fr-fcfs", None),
        ("casras-crit", None),
        ("crit-casras", None),
        ("ahb", None),
        ("par-bs", None),
        ("tcm", {"threads": 8}),
        ("tcm+crit", {"threads": 8}),
        ("morse-p", {"commands_checked": 6}),
        ("crit-rl", {"commands_checked": 6}),
    ])
    def test_every_scheduler_completes(self, sched, kwargs):
        result = run_parallel_workload(
            "fft", scheduler=sched, scheduler_kwargs=kwargs,
            provider_spec=("cbp", {"entries": 64}), scale=TINY,
        )
        assert not result.hit_max_cycles
        assert result.total_committed == 8 * 900
