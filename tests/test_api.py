"""Public API surface: imports, registry completeness, docstrings."""

import pytest


class TestTopLevelExports:
    def test_all_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__

    def test_core_exports(self):
        from repro.core import __all__ as names
        import repro.core as core

        for name in names:
            assert hasattr(core, name), name


class TestSchedulerRegistry:
    def test_expected_schedulers(self):
        from repro.sched.registry import SCHEDULERS

        assert set(SCHEDULERS) == {
            "fcfs", "fr-fcfs", "crit-casras", "casras-crit", "ahb", "atlas",
            "minimalist", "par-bs", "tcm", "tcm+crit", "morse-p", "crit-rl",
        }

    def test_factory_builds_fresh_instances(self):
        from repro.sched.registry import make_scheduler_factory

        factory = make_scheduler_factory("fr-fcfs")
        assert factory(0) is not factory(1)

    def test_factory_kwargs_forwarded(self):
        from repro.sched.registry import make_scheduler_factory

        factory = make_scheduler_factory("tcm", threads=4)
        assert factory(0).threads == 4

    def test_unknown_scheduler(self):
        from repro.sched.registry import make_scheduler_factory

        with pytest.raises(ValueError):
            make_scheduler_factory("bogus")

    def test_lazy_sched_module_attrs(self):
        import repro.sched as sched

        assert "fr-fcfs" in sched.SCHEDULERS
        with pytest.raises(AttributeError):
            sched.not_a_name


class TestDocstrings:
    @pytest.mark.parametrize("module_name", [
        "repro", "repro.config", "repro.dram.controller", "repro.cpu.core",
        "repro.cache.hierarchy", "repro.core.cbp", "repro.core.critsched",
        "repro.sched.frfcfs", "repro.sched.morse", "repro.workloads.synthetic",
        "repro.sim.system", "repro.experiments.common",
    ])
    def test_modules_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40

    def test_public_classes_documented(self):
        from repro.core.cbp import CommitBlockPredictor
        from repro.cpu.core import OutOfOrderCore
        from repro.dram.controller import ChannelController

        for cls in (CommitBlockPredictor, OutOfOrderCore, ChannelController):
            assert cls.__doc__
