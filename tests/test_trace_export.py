"""Trace exporters: JSONL and Chrome ``trace_event`` JSON."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.trace import (
    ChromeTraceWriter,
    TraceRecorder,
    event_dict,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)


def _sample_recorder():
    t = TraceRecorder(cap=64)
    t.command(36, 0, 0, 3, "ACT", 84, 56)
    t.command(92, 0, 0, 3, "READ", 84, 16)
    t.command(40, 1, 1, 5, "PRE", 12, 40)
    t.command(200, 0, 0, 0, "REF", -1, 560)
    t.block_episode(120, 2, 0x4F0, 95)
    t.prediction(118, 2, 0x4F0, 3)
    t.cache_event(130, "l2_fill", -1, 0x1000)
    t.cache_event(150, "dirty_evict", -1, 0x2000)
    t.cache_event(160, "inval", 1, 0x1040)
    return t


class TestJsonl:
    def test_one_object_per_event(self):
        text = to_jsonl(_sample_recorder().events)
        lines = text.strip().splitlines()
        assert len(lines) == 9
        objs = [json.loads(line) for line in lines]
        kinds = [o["type"] for o in objs]
        assert kinds.count("dram_command") == 4
        assert kinds.count("rob_block") == 1
        assert kinds.count("cbp_prediction") == 1
        assert kinds.count("cache_event") == 3
        block = next(o for o in objs if o["type"] == "rob_block")
        assert block == {"type": "rob_block", "ts": 120, "core": 2,
                         "pc": 0x4F0, "dur": 95}
        inval = next(o for o in objs if o["type"] == "cache_event"
                     and o["kind"] == "inval")
        assert inval == {"type": "cache_event", "ts": 160, "kind": "inval",
                         "core": 1, "line": 0x1040}

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown trace event tag"):
            to_jsonl([("bogus", 1, 2)])


class TestChromeTrace:
    def test_document_validates(self):
        doc = to_chrome_trace(_sample_recorder().events, label="unit")
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["source"] == "unit"
        json.dumps(doc)  # must be serialisable

    def test_lane_assignment(self):
        doc = to_chrome_trace(_sample_recorder().events)
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        act = next(e for e in events if e["name"].startswith("ACT"))
        assert act["pid"] == 1 and act["tid"] == 3  # channel 0, rank 0 bank 3
        pre = next(e for e in events if e["name"].startswith("PRE"))
        assert pre["pid"] == 2 and pre["tid"] == 1 * 32 + 5
        block = next(e for e in events if "ROB block" in e["name"])
        assert block["pid"] == 1002 and block["tid"] == 0
        pred = next(e for e in events
                    if e["ph"] == "i" and e["cat"] == "cbp")
        assert pred["pid"] == 1002 and pred["tid"] == 1
        assert pred["s"] == "t"
        fill = next(e for e in events if e["name"].startswith("l2_fill"))
        assert fill["pid"] == 2000 and fill["tid"] == 0
        evict = next(e for e in events
                     if e["name"].startswith("dirty_evict"))
        assert evict["pid"] == 2000 and evict["tid"] == 1
        inval = next(e for e in events if e["name"].startswith("inval"))
        assert inval["pid"] == 2000 and inval["tid"] == 2
        assert inval["args"] == {"kind": "inval", "core": 1, "line": 0x1040}

    def test_metadata_names_every_lane(self):
        doc = to_chrome_trace(_sample_recorder().events)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {e["pid"]: e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        assert process_names[1] == "DRAM channel 0"
        assert process_names[2] == "DRAM channel 1"
        assert process_names[1002] == "core 2"
        thread_names = {(e["pid"], e["tid"]): e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert thread_names[(1, 3)] == "rank 0 bank 3"
        assert thread_names[(1002, 1)] == "CBP predictions"
        assert process_names[2000] == "cache hierarchy"
        assert thread_names[(2000, 0)] == "L2 fills"
        assert thread_names[(2000, 1)] == "dirty evictions"
        assert thread_names[(2000, 2)] == "coherence invalidations"

    def test_zero_duration_commands_render_visible(self):
        t = TraceRecorder(cap=4)
        t.command(10, 0, 0, 0, "READ", 5, 0)
        doc = to_chrome_trace(t.events)
        read = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert read["dur"] >= 1


class TestTruncationMarker:
    """A wrapped ring must be visible in every export surface."""

    def test_complete_trace_marked_untruncated(self):
        doc = to_chrome_trace(_sample_recorder().events, label="unit")
        assert doc["otherData"]["truncated"] is False
        assert "dropped_events" not in doc["otherData"]

    def test_dropped_events_marked_truncated(self):
        doc = to_chrome_trace(_sample_recorder().events, label="unit",
                              dropped=86)
        assert doc["otherData"]["truncated"] is True
        assert doc["otherData"]["dropped_events"] == 86
        assert validate_chrome_trace(doc) == []

    def test_stats_cli_warns_when_ring_wrapped(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_CAP", "32")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert main(["stats", "fft", "--instructions", "800"]) == 0
        err = capsys.readouterr().err
        assert "ring wrapped" in err
        assert "oldest" in err

    def test_stats_cli_silent_when_ring_holds(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert main(["stats", "fft", "--instructions", "400"]) == 0
        assert "ring wrapped" not in capsys.readouterr().err


class TestIncrementalWriter:
    """The streaming Chrome writer must match the one-shot exporter."""

    def _one_shot(self, events, dropped=0):
        return to_chrome_trace(events, label="unit", dropped=dropped)

    def _incremental(self, events, dropped=0):
        import io

        fh = io.StringIO()
        writer = ChromeTraceWriter(fh, label="unit")
        for event in events:
            writer.add(event_dict(event))
        writer.finalize(dropped=dropped)
        return json.loads(fh.getvalue())

    @pytest.mark.parametrize("dropped", [0, 7])
    def test_matches_one_shot_exporter(self, dropped):
        """Same records, metadata, and otherData — position of the lane
        metadata inside traceEvents is the only allowed difference."""
        events = _sample_recorder().events
        inc = self._incremental(events, dropped)
        ref = self._one_shot(events, dropped)
        def key(record):
            return json.dumps(record, sort_keys=True)
        assert sorted(map(key, inc.pop("traceEvents"))) == \
            sorted(map(key, ref.pop("traceEvents")))
        assert inc == ref  # displayTimeUnit + otherData (incl. truncated)

    def test_empty_stream_still_valid_json(self):
        import io

        fh = io.StringIO()
        writer = ChromeTraceWriter(fh, label="empty")
        writer.finalize()
        doc = json.loads(fh.getvalue())
        assert doc["otherData"]["truncated"] is False
        # Only metadata lanes; the schema validator tolerates that.
        assert all(e["ph"] == "M" for e in doc["traceEvents"])


class TestValidator:
    def test_flags_structural_problems(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing traceEvents list"]
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )

    def test_flags_bad_events(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},  # no name
            {"name": "a", "ph": "Q", "pid": 1, "tid": 1},         # bad phase
            {"name": "b", "ph": "X", "pid": "x", "tid": 1,
             "ts": 0, "dur": 1},                                   # bad pid
            {"name": "c", "ph": "X", "pid": 1, "tid": 1,
             "ts": -5, "dur": 1},                                  # bad ts
            {"name": "d", "ph": "X", "pid": 1, "tid": 1, "ts": 0},  # no dur
            {"name": "e", "ph": "i", "pid": 1, "tid": 1, "ts": 0},  # no scope
        ]}
        problems = validate_chrome_trace(doc)
        assert len(problems) == 6

    def test_end_to_end_run_produces_valid_trace(self, monkeypatch):
        from repro.config import SimScale
        from repro.sim.runner import run_parallel_workload

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        scale = SimScale(instructions_per_core=600, warmup_instructions=0,
                         seed=3)
        result = run_parallel_workload("fft", scale=scale)
        assert result.trace_events
        doc = to_chrome_trace(result.trace_events, label=result.label)
        assert validate_chrome_trace(doc) == []
        kinds = {e[5] for e in result.trace_events if e[0] == "cmd"}
        assert "ACT" in kinds and "READ" in kinds
        cache_kinds = {e[2] for e in result.trace_events if e[0] == "cache"}
        assert "l2_fill" in cache_kinds

    def test_unknown_cache_kind_rejected(self):
        t = TraceRecorder(cap=4)
        with pytest.raises(ValueError, match="unknown cache event kind"):
            t.cache_event(0, "l3_fill", -1, 0x0)
