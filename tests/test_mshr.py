"""MSHR file semantics."""

import pytest

from repro.cache.mshr import MshrFile


class TestAllocate:
    def test_allocate_and_get(self):
        m = MshrFile(2)
        e = m.allocate(0x100)
        assert e is not None
        assert m.get(0x100) is e

    def test_full_returns_none(self):
        m = MshrFile(1)
        m.allocate(0x100)
        assert m.allocate(0x200) is None
        assert m.full_rejections == 1

    def test_duplicate_raises(self):
        m = MshrFile(2)
        m.allocate(0x100)
        with pytest.raises(ValueError):
            m.allocate(0x100)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestRelease:
    def test_release_frees_slot(self):
        m = MshrFile(1)
        m.allocate(0x100)
        m.release(0x100)
        assert m.get(0x100) is None
        assert m.allocate(0x200) is not None

    def test_peak_tracks_high_water(self):
        m = MshrFile(4)
        m.allocate(1)
        m.allocate(2)
        m.release(1)
        m.allocate(3)
        assert m.peak == 2
        assert len(m) == 2


class TestEntry:
    def test_defaults(self):
        m = MshrFile(2)
        e = m.allocate(0x40)
        assert e.waiters == []
        assert e.txn is None
        assert not e.rfo
