"""Fleet registry (``REPRO_FLEET_DIR``): indexing, dashboards, crash safety.

Mirrors the stream-layer crash discipline one level up: entry files and
``INDEX.json`` are written atomically, a SIGKILL'd run stays visible
(entry + ``running`` manifest), and every reader — ``repro watch`` in
fleet or single-run mode, ``trace --from-stream`` — degrades to a clear
one-line message instead of a traceback when pointed at something
missing, mid-write, or corrupt.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.telemetry import fleet, monitor
from repro.telemetry import stream as stream_mod

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _cli_env(fleet_dir=None, **extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_STREAM_DIR", None)
    env.pop("REPRO_FLEET_DIR", None)
    if fleet_dir is not None:
        env.update({
            "REPRO_FLEET_DIR": str(fleet_dir),
            "REPRO_STREAM_SEGMENT": "64",
            "REPRO_SAMPLE_EVERY": "64",
            "REPRO_NO_CACHE": "1",
        })
    env.update(extra)
    return env


class TestRegistry:
    def test_allocate_creates_unique_dirs(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path)
        first = registry.allocate("fft/fr-fcfs")
        second = registry.allocate("fft/fr-fcfs")
        assert first != second
        assert first.is_dir() and second.is_dir()
        assert first.parent == tmp_path

    def test_allocate_slugs_hostile_labels(self, tmp_path):
        path = fleet.RunRegistry(tmp_path).allocate("a/b c:d")
        assert path.parent == tmp_path
        assert "/" not in path.name[1:]

    def test_register_and_entries(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path)
        run_dir = registry.allocate("radix")
        run_id = registry.register(run_dir, "radix/par-bs")
        assert run_id == run_dir.name
        (entry,) = registry.entries()
        assert entry["run_id"] == run_id
        assert entry["label"] == "radix/par-bs"
        assert Path(entry["dir"]) == run_dir.resolve()

    def test_register_outside_root_gets_hash_suffix(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path / "root")
        elsewhere = tmp_path / "elsewhere" / "run"
        elsewhere.mkdir(parents=True)
        run_id = registry.register(elsewhere, "external")
        assert run_id.startswith("run-")
        assert run_id != "run"  # hash suffix present

    def test_index_is_a_parseable_view(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path)
        registry.register(registry.allocate("a"), "a")
        registry.register(registry.allocate("b"), "b")
        index = json.loads((tmp_path / fleet.INDEX_NAME).read_text())
        assert index["version"] == 1
        assert len(index["runs"]) == 2
        assert fleet.is_fleet_root(tmp_path)

    def test_torn_entry_is_skipped_not_fatal(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path)
        registry.register(registry.allocate("good"), "good")
        (registry.registry_dir / "torn.json").write_text('{"run_id": "t')
        assert [e["label"] for e in registry.entries()] == ["good"]

    def test_runs_join_manifest_status(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path)
        bare = registry.allocate("bare")  # no manifest yet
        registry.register(bare, "bare")
        done = registry.allocate("done")
        registry.register(done, "done")
        writer = stream_mod.StreamWriter(done, segment_cap=4,
                                         flush_cycles=1 << 40)
        writer.begin("done", [])
        writer.finalize(cycles=123)
        gone = registry.allocate("gone")
        registry.register(gone, "gone")
        gone.rmdir()
        by_label = {r["label"]: r["status"] for r in registry.runs()}
        assert by_label == {
            "bare": "starting", "done": "complete", "gone": "missing",
        }

    def test_find_by_id_and_label(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path)
        run_dir = registry.allocate("fft")
        run_id = registry.register(run_dir, "fft/fr-fcfs")
        assert registry.find(run_id)["run_id"] == run_id
        assert registry.find("fft/fr-fcfs")["run_id"] == run_id
        assert registry.find("nope") is None


class TestAutoRegistration:
    def test_runs_register_themselves(self, tmp_path, monkeypatch):
        from repro.config import TINY_SCALE
        from repro.sim.runner import run_parallel_workload

        monkeypatch.delenv("REPRO_STREAM_DIR", raising=False)
        monkeypatch.setenv("REPRO_FLEET_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "256")
        run_parallel_workload("fft", scale=TINY_SCALE)
        run_parallel_workload("radix", scheduler="par-bs", scale=TINY_SCALE)
        runs = fleet.RunRegistry(tmp_path).runs()
        assert len(runs) == 2
        assert {r["label"] for r in runs} == {"fft/fr-fcfs", "radix/par-bs"}
        assert all(r["status"] == "complete" for r in runs)

    def test_explicit_stream_dir_still_registers(self, tmp_path,
                                                 monkeypatch):
        from repro.config import TINY_SCALE
        from repro.sim.runner import run_parallel_workload

        stream_dir = tmp_path / "elsewhere"
        monkeypatch.setenv("REPRO_FLEET_DIR", str(tmp_path / "root"))
        monkeypatch.setenv("REPRO_STREAM_DIR", str(stream_dir))
        run_parallel_workload("fft", scale=TINY_SCALE)
        (run,) = fleet.RunRegistry(tmp_path / "root").runs()
        assert Path(run["dir"]) == stream_dir.resolve()
        assert run["status"] == "complete"

    def test_verify_skip_registers_exactly_one_run(self, tmp_path,
                                                   monkeypatch):
        from repro.config import TINY_SCALE
        from repro.sim.runner import run_parallel_workload

        monkeypatch.delenv("REPRO_STREAM_DIR", raising=False)
        monkeypatch.setenv("REPRO_FLEET_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_VERIFY_SKIP", "1")
        run_parallel_workload("fft", scale=TINY_SCALE)
        assert os.environ["REPRO_FLEET_DIR"] == str(tmp_path)
        assert len(fleet.RunRegistry(tmp_path).entries()) == 1


class TestFleetDashboard:
    @pytest.fixture
    def populated_root(self, tmp_path, monkeypatch):
        from repro.config import TINY_SCALE
        from repro.sim.runner import run_parallel_workload

        monkeypatch.delenv("REPRO_STREAM_DIR", raising=False)
        monkeypatch.setenv("REPRO_FLEET_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "128")
        run_parallel_workload("fft", scale=TINY_SCALE)
        run_parallel_workload("radix", scheduler="par-bs", scale=TINY_SCALE)
        return tmp_path

    def test_fleet_table_lists_every_run(self, populated_root):
        out = io.StringIO()
        assert monitor.watch(populated_root, once=True, out=out) == 0
        text = out.getvalue()
        assert "2 run(s)" in text
        assert "fft/fr-fcfs" in text
        assert "radix/par-bs" in text
        assert "complete" in text
        assert "IPC" in text

    def test_drill_down_renders_single_run_dashboard(self, populated_root):
        run_id = fleet.RunRegistry(populated_root).entries()[0]["run_id"]
        out = io.StringIO()
        assert monitor.watch(populated_root, once=True, out=out,
                             run=run_id) == 0
        text = out.getvalue()
        assert "[complete]" in text  # the single-run dashboard header
        assert "run(s)" not in text

    def test_drill_down_by_label(self, populated_root):
        out = io.StringIO()
        assert monitor.watch(populated_root, once=True, out=out,
                             run="radix/par-bs") == 0
        assert "radix/par-bs" in out.getvalue()

    def test_unknown_run_is_one_line_error(self, populated_root):
        out = io.StringIO()
        assert monitor.watch(populated_root, once=True, out=out,
                             run="nope") == 1
        text = out.getvalue()
        assert text.startswith("error:")
        assert "known runs" in text

    def test_empty_root_renders_placeholder(self, tmp_path):
        (tmp_path / fleet.REGISTRY_DIRNAME).mkdir()
        out = io.StringIO()
        assert monitor.watch(tmp_path, once=True, out=out) == 0
        assert "no runs registered" in out.getvalue()


class TestCrashSafety:
    """SIGKILL a fleet-registered run; everything stays readable."""

    _CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.config import SimScale
from repro.sim.runner import run_parallel_workload

scale = SimScale(instructions_per_core=2_000_000, warmup_instructions=0,
                 seed=11)
run_parallel_workload("fft", scale=scale)
"""

    @pytest.fixture(scope="class")
    def killed_root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("fleet-killed")
        child = subprocess.Popen(
            [sys.executable, "-c", self._CHILD.format(src=_SRC)],
            env=_cli_env(root),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                entries = fleet.RunRegistry(root).entries()
                if entries:
                    manifest = stream_mod.read_manifest(
                        entries[0]["dir"], missing_ok=True
                    )
                    if manifest and manifest["samples"]["segments"]:
                        break
                if child.poll() is not None:
                    raise RuntimeError("fleet child exited prematurely")
                time.sleep(0.05)
            else:
                raise RuntimeError("no registered sealed run in time")
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        return root

    def test_index_and_entry_survive(self, killed_root):
        index = json.loads((killed_root / fleet.INDEX_NAME).read_text())
        assert len(index["runs"]) == 1
        (entry,) = fleet.RunRegistry(killed_root).entries()
        assert entry["label"] == "fft/fr-fcfs"

    def test_killed_run_reports_running(self, killed_root):
        (run,) = fleet.RunRegistry(killed_root).runs()
        assert run["status"] == "running"

    def test_dashboard_renders_degraded_not_traceback(self, killed_root):
        out = io.StringIO()
        assert monitor.watch(killed_root, once=True, out=out) == 0
        text = out.getvalue()
        assert "running" in text
        assert "Traceback" not in text


class TestReaderBugfixes:
    """watch/trace on missing or broken inputs: one clear line, never a
    traceback (Path.glob on a missing directory used to raise)."""

    def _watch_cli(self, directory, *extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", "watch", str(directory),
             "--once", *extra],
            env=_cli_env(), capture_output=True, text=True, timeout=60,
        )

    def test_watch_missing_dir_prints_placeholder(self, tmp_path):
        proc = self._watch_cli(tmp_path / "never-created")
        assert proc.returncode == 0
        assert "waiting for a stream manifest" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_watch_corrupt_manifest_is_one_line_error(self, tmp_path):
        (tmp_path / stream_mod.MANIFEST_NAME).write_text('{"status": ')
        proc = self._watch_cli(tmp_path)
        assert proc.returncode == 1
        assert "error:" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_watch_dir_without_manifest_waits(self, tmp_path):
        out = io.StringIO()
        assert monitor.watch(tmp_path, once=True, out=out) == 0
        assert "waiting for a stream manifest" in out.getvalue()

    def test_trace_from_stream_on_fleet_root_lists_runs(self, tmp_path):
        registry = fleet.RunRegistry(tmp_path)
        registry.register(registry.allocate("fft"), "fft/fr-fcfs")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace",
             "--from-stream", str(tmp_path), "--out", "/dev/null"],
            env=_cli_env(), capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 1
        assert "fleet registry root" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_trace_from_stream_on_empty_fleet_root(self, tmp_path):
        (tmp_path / fleet.REGISTRY_DIRNAME).mkdir()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace",
             "--from-stream", str(tmp_path), "--out", "/dev/null"],
            env=_cli_env(), capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 1
        assert "none registered yet" in proc.stderr
        assert "Traceback" not in proc.stderr
