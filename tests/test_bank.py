"""Per-bank timing state machine."""

import pytest

from repro.config import DDR3_2133
from repro.dram.bank import Bank


@pytest.fixture
def bank():
    return Bank(rank=0, index=0, timings=DDR3_2133)


class TestActivate:
    def test_opens_row(self, bank):
        bank.do_activate(42, now=0)
        assert bank.open_row == 42
        assert bank.is_open()

    def test_cas_waits_trcd(self, bank):
        bank.do_activate(1, now=10)
        assert bank.cas_ready == 10 + DDR3_2133.tRCD

    def test_precharge_waits_tras(self, bank):
        bank.do_activate(1, now=10)
        assert bank.pre_ready >= 10 + DDR3_2133.tRAS

    def test_act_to_act_waits_trc(self, bank):
        bank.do_activate(1, now=10)
        assert bank.act_ready == 10 + DDR3_2133.tRC

    def test_records_opener(self, bank):
        bank.do_activate(1, now=0, opened_by=77)
        assert bank.opened_by == 77


class TestPrecharge:
    def test_closes_row(self, bank):
        bank.do_activate(1, now=0)
        bank.do_precharge(now=40)
        assert bank.open_row is None
        assert bank.opened_by == -1

    def test_next_activate_waits_trp(self, bank):
        bank.do_activate(1, now=0)
        bank.do_precharge(now=50)
        assert bank.act_ready >= 50 + DDR3_2133.tRP


class TestReadWrite:
    def test_read_pushes_precharge_by_trtp(self, bank):
        bank.do_activate(1, now=0)
        bank.do_read(now=20)
        assert bank.pre_ready >= 20 + DDR3_2133.tRTP

    def test_write_recovery_longer_than_read(self, bank):
        other = Bank(0, 1, DDR3_2133)
        bank.do_activate(1, now=0)
        other.do_activate(1, now=0)
        bank.do_read(now=20)
        other.do_write(now=20)
        assert other.pre_ready > bank.pre_ready

    def test_write_recovery_formula(self, bank):
        bank.do_activate(1, now=0)
        bank.do_write(now=20)
        t = DDR3_2133
        assert bank.pre_ready >= 20 + t.tWL + t.burst_cycles + t.tWR

    def test_last_use_updates(self, bank):
        bank.do_activate(1, now=5)
        assert bank.last_use == 5
        bank.do_read(now=25)
        assert bank.last_use == 25


class TestClassify:
    def test_closed(self, bank):
        assert bank.classify(3) == "closed"

    def test_hit(self, bank):
        bank.do_activate(3, now=0)
        assert bank.classify(3) == "hit"

    def test_conflict(self, bank):
        bank.do_activate(3, now=0)
        assert bank.classify(4) == "conflict"


class TestBlockUntil:
    def test_blocks_all_commands(self, bank):
        bank.block_until(500)
        assert bank.act_ready >= 500
        assert bank.cas_ready >= 500
        assert bank.pre_ready >= 500

    def test_never_reduces_readiness(self, bank):
        bank.do_activate(1, now=0)
        ready = bank.act_ready
        bank.block_until(1)
        assert bank.act_ready == ready
