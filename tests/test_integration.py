"""Cross-module integration invariants."""

import pytest

from repro.config import DramConfig, SimScale, SystemConfig
from repro.cpu.instruction import INT, LOAD, STORE, Trace
from repro.sim.runner import run_parallel_workload
from repro.sim.system import System
from repro.workloads.synthetic import clear_trace_cache

TINY = SimScale(instructions_per_core=900, warmup_instructions=100)


@pytest.fixture(autouse=True)
def _fresh():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestFunctionalInvariance:
    """Scheduling policy must never change *what* executes, only *when*."""

    @pytest.mark.parametrize("sched", ["fcfs", "casras-crit", "par-bs", "atlas"])
    def test_commit_counts_identical_across_schedulers(self, sched):
        base = run_parallel_workload("radix", scheduler="fr-fcfs", scale=TINY)
        other = run_parallel_workload(
            "radix", scheduler=sched,
            provider_spec=("cbp", {"entries": 64}), scale=TINY,
        )
        assert base.committed == other.committed

    def test_loads_issued_identical(self):
        base = run_parallel_workload("radix", scheduler="fr-fcfs", scale=TINY)
        crit = run_parallel_workload(
            "radix", scheduler="casras-crit",
            provider_spec=("cbp", {"entries": 64}), scale=TINY,
        )
        assert base.hierarchy.loads == crit.hierarchy.loads
        assert base.hierarchy.stores == crit.hierarchy.stores


class TestConservation:
    def test_dram_reads_bounded_by_misses(self):
        result = run_parallel_workload("fft", scale=TINY)
        reads_done = sum(c.reads_done for c in result.channels)
        # Every DRAM read is a demand L2 miss, a store RFO, or a prefetch.
        h = result.hierarchy
        assert h.dram_loads <= reads_done

    def test_row_hits_bounded_by_reads(self):
        result = run_parallel_workload("swim", scale=TINY)
        for c in result.channels:
            assert 0 <= c.row_hit_reads <= c.reads_done

    def test_finish_cycles_bounded_by_total(self):
        result = run_parallel_workload("mg", scale=TINY)
        assert max(result.finish_cycles) == result.cycles


class TestStarvationCap:
    def test_noncritical_read_completes_despite_critical_flood(self):
        """One non-critical read amid a constant critical stream must
        finish within ~the starvation cap."""
        config = SystemConfig(
            cores=2,
            dram=DramConfig(channels=1, starvation_cap_dram_cycles=400),
        )
        victim = Trace("victim")
        victim.append(LOAD, 9, 5 << 30, 0)  # one cold load, never marked
        flood = Trace("flood")
        addr = 6 << 30
        while len(flood) < 12_000:
            flood.append(LOAD, 3, addr, 0)
            for i in range(4):
                flood.append(INT, 4, 0, 1 if i else 0)
            addr += 64

        class AlwaysCritical:
            def annotate(self, pc):
                return (True, 1000) if pc == 3 else (False, 0)

            def on_block_start(self, *a, **k):
                pass

            def on_blocked_commit(self, *a, **k):
                pass

            def on_load_consumers(self, *a, **k):
                pass

            def tick(self, *a, **k):
                pass

        system = System(
            config, [victim, flood], scheduler="casras-crit",
            provider_spec=lambda core: AlwaysCritical(),
        )
        result = system.run(max_cycles=2_000_000)
        # Victim core finishes well before the flood.
        assert result.finish_cycles[0] < result.finish_cycles[1]
        # And within cap * ratio * slack of its issue.
        assert result.finish_cycles[0] < 400 * 4 * 6


class TestPrefetchIntegration:
    def test_prefetcher_issues_and_hits(self):
        from repro.config import PrefetcherConfig

        config = SystemConfig(prefetcher=PrefetcherConfig(enabled=True))
        result = run_parallel_workload("swim", config=config, scale=TINY)
        assert result.hierarchy.prefetches_issued > 0

    def test_prefetch_disabled_by_default(self):
        result = run_parallel_workload("swim", scale=TINY)
        assert result.hierarchy.prefetches_issued == 0


class TestDeterminismAcrossRuns:
    def test_full_stack_deterministic(self):
        a = run_parallel_workload(
            "scalparc", scheduler="casras-crit",
            provider_spec=("cbp", {"entries": 64}), scale=TINY,
        )
        clear_trace_cache()
        b = run_parallel_workload(
            "scalparc", scheduler="casras-crit",
            provider_spec=("cbp", {"entries": 64}), scale=TINY,
        )
        assert a.cycles == b.cycles
        assert a.finish_cycles == b.finish_cycles
        assert a.hierarchy.dram_loads == b.hierarchy.dram_loads

    def test_morse_deterministic_despite_exploration(self):
        a = run_parallel_workload(
            "radix", scheduler="morse-p",
            scheduler_kwargs={"commands_checked": 6}, scale=TINY,
        )
        clear_trace_cache()
        b = run_parallel_workload(
            "radix", scheduler="morse-p",
            scheduler_kwargs={"commands_checked": 6}, scale=TINY,
        )
        assert a.cycles == b.cycles
