"""Property-based tests of the criticality scheduler's ordering."""

from hypothesis import given, settings, strategies as st

from repro.core.critsched import CasRasCritScheduler, CritCasRasScheduler
from repro.dram.addressmap import DramLocation
from repro.dram.command import CandidateCommand, CommandKind
from repro.dram.transaction import Transaction


class FakeController:
    def __init__(self, reads):
        self.read_queue = list(reads)
        self.write_queue = []

    class config:
        row_idle_precharge_cycles = 12


def build(reads_spec):
    """reads_spec: list of (core, critical, magnitude, is_cas)."""
    txns, cands = [], []
    for seq, (core, critical, magnitude, is_cas) in enumerate(reads_spec):
        t = Transaction(0, DramLocation(0, 0, seq % 8, 0, 0), core=core,
                        critical=critical, magnitude=magnitude)
        t.seq = seq
        t.arrival = 0
        txns.append(t)
        kind = CommandKind.READ if is_cas else CommandKind.ACTIVATE
        cands.append(CandidateCommand(kind, t, 0, seq % 8, 0))
    return txns, cands


request_strategy = st.tuples(
    st.integers(0, 3),            # core
    st.booleans(),                # critical
    st.integers(0, 4000),         # magnitude
    st.booleans(),                # is_cas
)


@settings(max_examples=80)
@given(st.lists(request_strategy, min_size=1, max_size=12))
def test_casras_crit_never_picks_ras_over_cas(spec):
    txns, cands = build(spec)
    sched = CasRasCritScheduler()
    chosen = sched.select(cands, FakeController(txns), now=0)
    assert chosen is not None
    if any(c.is_cas for c in cands):
        assert chosen.is_cas


@settings(max_examples=80)
@given(st.lists(request_strategy, min_size=1, max_size=12))
def test_within_core_age_order_preserved(spec):
    """Among one core's critical CAS candidates, the oldest must win."""
    txns, cands = build(spec)
    sched = CasRasCritScheduler(magnitude_shift=0)
    chosen = sched.select(cands, FakeController(txns), now=0)
    if chosen is None or not chosen.is_cas or not chosen.txn.critical:
        return
    same_core_crit_cas = [
        c for c in cands
        if c.is_cas and c.txn.core == chosen.txn.core and c.txn.critical
    ]
    assert chosen.txn.seq == min(c.txn.seq for c in same_core_crit_cas)


@settings(max_examples=80)
@given(st.lists(request_strategy, min_size=1, max_size=12))
def test_crit_casras_criticality_dominates(spec):
    """If any candidate's core has a critical request, Crit-CASRAS never
    picks a non-critical candidate while a critical one is available."""
    txns, cands = build(spec)
    sched = CritCasRasScheduler()
    chosen = sched.select(cands, FakeController(txns), now=0)
    assert chosen is not None
    if any(c.txn.critical for c in cands):
        assert chosen.txn.critical


@settings(max_examples=60)
@given(st.lists(request_strategy, min_size=1, max_size=12),
       st.integers(0, 10))
def test_selection_is_deterministic(spec, shift):
    txns1, cands1 = build(spec)
    txns2, cands2 = build(spec)
    s1 = CasRasCritScheduler(magnitude_shift=shift)
    s2 = CasRasCritScheduler(magnitude_shift=shift)
    c1 = s1.select(cands1, FakeController(txns1), now=5)
    c2 = s2.select(cands2, FakeController(txns2), now=5)
    assert c1.txn.seq == c2.txn.seq
    assert c1.kind == c2.kind
