"""L2 stream prefetcher behaviour."""

import pytest

from repro.config import PrefetcherConfig
from repro.cache.prefetcher import StreamPrefetcher


def make_pf(enabled=True, streams=4, distance=16, degree=4):
    return StreamPrefetcher(
        PrefetcherConfig(enabled=enabled, streams=streams, distance=distance,
                         degree=degree),
        line_bytes=64,
    )


def train(pf, start_line, count, step=1):
    out = []
    for k in range(count):
        out.extend(pf.observe((start_line + k * step) * 64, is_miss=True))
    return out


class TestTraining:
    def test_disabled_returns_nothing(self):
        pf = make_pf(enabled=False)
        assert train(pf, 100, 10) == []

    def test_needs_confirmations(self):
        pf = make_pf()
        assert pf.observe(100 * 64, True) == []   # allocate
        assert pf.observe(101 * 64, True) == []   # confidence 1
        assert pf.observe(102 * 64, True) != []   # confirmed -> prefetch

    def test_prefetches_ahead_in_direction(self):
        pf = make_pf()
        issued = train(pf, 100, 8)
        lines = [a // 64 for a in issued]
        assert lines
        assert all(line > 100 for line in lines)
        assert lines == sorted(lines)

    def test_degree_limits_per_access(self):
        pf = make_pf(degree=2)
        train(pf, 100, 4)
        burst = pf.observe(104 * 64, True)
        assert len(burst) <= 2

    def test_distance_limits_runahead(self):
        pf = make_pf(distance=8, degree=8)
        issued = train(pf, 100, 12)
        lines = [a // 64 for a in issued]
        # No prefetch more than `distance` lines beyond its trigger.
        assert max(lines) <= 111 + 8

    def test_descending_streams_supported(self):
        pf = make_pf()
        issued = []
        for k in range(8):
            issued.extend(pf.observe((200 - k) * 64, True))
        lines = [a // 64 for a in issued]
        assert lines and all(line < 200 for line in lines)


class TestStreamTable:
    def test_stream_capacity_evicts_lru(self):
        pf = make_pf(streams=2)
        pf.observe(0 * 64, True)        # region A
        pf.observe(1000 * 64, True)     # region B
        pf.observe(2000 * 64, True)     # region C evicts A
        assert pf.active_streams() == 2

    def test_hit_does_not_allocate(self):
        pf = make_pf()
        pf.observe(100 * 64, False)
        assert pf.active_streams() == 0

    def test_issued_counter(self):
        pf = make_pf()
        train(pf, 100, 8)
        assert pf.issued > 0
