"""Differential oracle: the streamed event log vs the in-memory ring.

The streaming writer spills every trace event *before* the ring applies
its drop-oldest policy, and encodes each record with exactly the same
``json.dumps(..., sort_keys=True)`` line the post-run JSONL exporter
uses.  Two invariants follow, and this module pins both for every
registered scheduler:

* with a roomy ring, the streamed JSONL is byte-identical to
  ``to_jsonl(result.trace_events)``;
* with a ring smaller than the run (``REPRO_TRACE_CAP`` exceeded), the
  stream still holds **all** events and the ring's JSONL is a byte
  suffix of it — the ring is always a tail window of the stream.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimScale, SystemConfig
from repro.sched.registry import SCHEDULERS
from repro.sim.system import System
from repro.telemetry import stream as stream_mod
from repro.telemetry.trace import to_jsonl
from repro.workloads.parallel import parallel_traces

SCALE = SimScale(instructions_per_core=400, warmup_instructions=0, seed=11)


def _provider_for(scheduler: str):
    if "crit" in scheduler or scheduler == "minimalist":
        return ("cbp", {"entries": 64})
    return None


def _run_streamed(stream_dir, scheduler="fr-fcfs"):
    config = SystemConfig.parallel_default()
    traces = parallel_traces(
        "fft", config.cores, SCALE.instructions_per_core, seed=SCALE.seed
    )
    system = System(
        config, traces, scheduler=scheduler,
        provider_spec=_provider_for(scheduler),
    )
    return system.run()


def _streamed_jsonl(directory) -> str:
    return "".join(
        json.dumps(record, sort_keys=True) + "\n"
        for record in stream_mod.iter_records(directory, "events")
    )


@pytest.fixture
def streaming(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_STREAM_DIR", str(tmp_path))
    return tmp_path


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_stream_matches_ring_for_every_scheduler(streaming, scheduler):
    result = _run_streamed(streaming, scheduler)
    assert result.trace_events, "trace produced nothing"
    assert result.trace_dropped == 0, "ring wrapped; enlarge for this test"
    assert _streamed_jsonl(streaming) == to_jsonl(result.trace_events)
    manifest = stream_mod.read_manifest(streaming)
    assert manifest["status"] == "complete"
    assert manifest["events"]["total"] == len(result.trace_events)


class TestCappedRing:
    """A wrapped ring keeps the tail; the stream keeps everything."""

    @pytest.fixture
    def capped(self, streaming, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CAP", "64")
        return streaming

    def test_stream_is_superset_prefix(self, capped):
        result = _run_streamed(capped)
        assert result.trace_dropped > 0, "run too short to wrap the ring"
        assert len(result.trace_events) == 64
        streamed = _streamed_jsonl(capped)
        ring = to_jsonl(result.trace_events)
        assert streamed.endswith(ring)
        assert streamed != ring
        total = len(streamed.splitlines())
        assert total == len(result.trace_events) + result.trace_dropped
        manifest = stream_mod.read_manifest(capped)
        assert manifest["events"]["total"] == total
        assert manifest["trace_dropped"] == result.trace_dropped

    def test_small_segments_cover_the_same_bytes(self, capped, monkeypatch):
        """Segmentation must never lose or reorder records."""
        monkeypatch.setenv("REPRO_STREAM_SEGMENT", "37")
        result = _run_streamed(capped)
        streamed = _streamed_jsonl(capped)
        assert streamed.endswith(to_jsonl(result.trace_events))
        manifest = stream_mod.read_manifest(capped)
        assert len(manifest["events"]["segments"]) > 3
        # Per-segment counts in the manifest sum to the full stream.
        assert sum(
            s["count"] for s in manifest["events"]["segments"]
        ) == len(streamed.splitlines())


def test_samples_streamed_at_full_resolution(streaming, monkeypatch):
    """The stream keeps every sample the in-memory series decimates."""
    from repro.telemetry import sampler as sampler_mod

    monkeypatch.setenv("REPRO_SAMPLE_EVERY", "32")
    monkeypatch.setattr(sampler_mod, "_SAMPLE_CAP", 16)
    result = _run_streamed(streaming)
    cycles, series = stream_mod.read_samples(streaming)
    assert len(result.sample_cycles) < len(cycles)
    # The decimated in-memory stream is a subsequence of the full one.
    assert set(result.sample_cycles) <= set(cycles)
    name = next(iter(series))
    by_cycle = dict(zip(cycles, series[name]))
    for cycle, value in zip(result.sample_cycles, result.timeseries[name]):
        assert by_cycle[cycle] == value
