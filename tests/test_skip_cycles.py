"""The fast-forwarding cycle loop must be bit-identical to the naive loop.

``System.run(skip_cycles=True)`` jumps over dead cycles; every counter,
finish cycle, and channel statistic must nonetheless come out exactly as
if the loop had stepped cycle by cycle.  These tests pin that contract
across schedulers, providers, workload shapes, and the max_cycles cap,
plus determinism of repeated runs and runs in worker processes.
"""

from __future__ import annotations

import pytest

from repro.config import SimScale, SystemConfig
from repro.cpu.instruction import Trace
from repro.sim.runner import (
    run_application_alone,
    run_multiprogrammed_workload,
    run_parallel_workload,
)
from repro.sim.stats import result_fingerprint
from repro.sim.system import System
from repro.workloads.multiprog import BUNDLES
from repro.workloads.parallel import parallel_traces

SCALE = SimScale(instructions_per_core=800, warmup_instructions=0, seed=11)


def _parallel_system(app="fft", scheduler="fr-fcfs", provider_spec=None,
                     scheduler_kwargs=None, config=None):
    config = config or SystemConfig.parallel_default()
    traces = parallel_traces(
        app, config.cores, SCALE.instructions_per_core, seed=SCALE.seed
    )
    return System(
        config,
        traces,
        scheduler=scheduler,
        scheduler_kwargs=scheduler_kwargs,
        provider_spec=provider_spec,
    )


def _both_modes(make_system, max_cycles=None):
    naive = make_system().run(max_cycles=max_cycles, skip_cycles=False)
    fast = make_system().run(max_cycles=max_cycles, skip_cycles=True)
    return naive, fast


CASES = [
    {},
    {"scheduler": "crit-casras", "provider_spec": ("cbp", {"entries": 64})},
    {
        "app": "radix",
        "scheduler": "casras-crit",
        "provider_spec": ("cbp", {"entries": 64, "reset_interval": 500}),
    },
    {"app": "mg", "provider_spec": ("naive", {})},
    {"app": "ocean", "scheduler": "par-bs"},
    {"app": "cg", "scheduler": "tcm"},
]


class TestBitIdentity:
    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.get("app", "fft")
                             + "/" + c.get("scheduler", "fr-fcfs"))
    def test_parallel_workloads(self, case):
        naive, fast = _both_modes(lambda: _parallel_system(**case))
        assert result_fingerprint(naive) == result_fingerprint(fast)

    def test_prefetcher_enabled(self):
        from repro.config import PrefetcherConfig

        config = SystemConfig.parallel_default().scaled(
            prefetcher=PrefetcherConfig(enabled=True)
        )
        naive, fast = _both_modes(lambda: _parallel_system(config=config))
        assert result_fingerprint(naive) == result_fingerprint(fast)

    def test_max_cycles_cap(self):
        naive, fast = _both_modes(lambda: _parallel_system(), max_cycles=900)
        assert naive.hit_max_cycles
        assert result_fingerprint(naive) == result_fingerprint(fast)

    def test_idle_cores(self):
        """Execute-alone shape: most cores run empty traces (deep skips)."""
        config = SystemConfig.multiprogrammed_default()
        bundle = sorted(BUNDLES)[0]
        from repro.workloads.multiprog import bundle_traces

        traces = bundle_traces(
            bundle, SCALE.instructions_per_core, seed=SCALE.seed
        )
        solo = [traces[0]] + [Trace(name="idle")] * (config.cores - 1)

        def make():
            return System(config, solo, scheduler="par-bs")

        naive, fast = _both_modes(make)
        assert result_fingerprint(naive) == result_fingerprint(fast)

    def test_duck_typed_provider_never_skips(self):
        """Providers without next_tick_cycle run safely (and identically)."""

        class Quiet:
            def annotate(self, pc):
                return (False, 0)

            def on_block_start(self, *a, **k):
                pass

            def on_blocked_commit(self, *a, **k):
                pass

            def on_load_consumers(self, *a, **k):
                pass

            def tick(self, *a, **k):
                pass

        naive, fast = _both_modes(
            lambda: _parallel_system(provider_spec=lambda core: Quiet())
        )
        assert result_fingerprint(naive) == result_fingerprint(fast)


class TestRunnerKnobs:
    def test_no_skip_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SKIP", "1")
        forced = run_parallel_workload("fft", scale=SCALE)
        monkeypatch.delenv("REPRO_NO_SKIP")
        default = run_parallel_workload("fft", scale=SCALE)
        assert result_fingerprint(forced) == result_fingerprint(default)

    def test_verify_skip_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_SKIP", "1")
        result = run_multiprogrammed_workload(sorted(BUNDLES)[0], scale=SCALE)
        assert result.cycles > 0

    def test_wall_seconds_recorded(self):
        result = run_parallel_workload("fft", scale=SCALE)
        assert result.wall_seconds > 0
        assert result.cycles_per_second > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_parallel_workload("fft", scale=SCALE)
        b = run_parallel_workload("fft", scale=SCALE)
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_identical_across_worker_processes(self, tmp_path, monkeypatch):
        """A run in a forked worker equals the same run done inline."""
        from repro.sim.engine import RunSpec, run_many, run_one

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        specs = [
            RunSpec(kind="parallel", workload="fft", scale=SCALE),
            RunSpec(kind="parallel", workload="radix", scale=SCALE),
        ]
        pooled = run_many(specs, jobs=2)
        for spec, result in zip(specs, pooled):
            assert result_fingerprint(run_one(spec)) == result_fingerprint(
                result
            )

    def test_alone_run_accepts_provider_and_kwargs(self):
        """Regression: run_application_alone used to drop these silently."""
        from repro.core.provider import CbpProvider

        bundle = sorted(BUNDLES)[0]
        result = run_application_alone(
            bundle,
            0,
            scheduler="crit-casras",
            scale=SCALE,
            provider_spec=("cbp", {"entries": 64}),
            scheduler_kwargs={},
        )
        assert all(isinstance(p, CbpProvider) for p in result.providers)
