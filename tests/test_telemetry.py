"""Unit tests for the telemetry spine: instruments, registry, sampler, trace."""

from __future__ import annotations

import pytest

from repro.telemetry import Telemetry, config_fingerprint
from repro.telemetry.registry import (
    HISTOGRAM_BUCKETS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricRegistry,
)
from repro.telemetry.sampler import IntervalSampler
from repro.telemetry.sampler import interval as sample_interval
from repro.telemetry.trace import TraceRecorder, capacity, enabled


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.add()
        c.add(4)
        assert c.read() == 5
        assert c.kind == "counter"

    def test_gauge_reads_through(self):
        box = {"v": 3}
        g = Gauge(lambda: box["v"])
        assert g.read() == 3
        box["v"] = 9
        assert g.read() == 9


class TestLatencyHistogram:
    def test_exact_mean_matches_sum_over_count(self):
        h = LatencyHistogram()
        values = [0, 1, 2, 3, 100, 255, 256, 1000]
        for v in values:
            h.record(v)
        assert h.count == len(values)
        assert h.total == sum(values)
        assert h.mean == sum(values) / len(values)
        assert h.max == 1000
        assert h.min == 0

    def test_bucket_indexing_powers_of_two(self):
        h = LatencyHistogram()
        h.record(0)  # bucket 0
        h.record(1)  # bucket 1
        h.record(2)  # bucket 2 (bit_length 2)
        h.record(3)  # bucket 2
        h.record(4)  # bucket 3
        assert h.counts[0] == 1
        assert h.counts[1] == 1
        assert h.counts[2] == 2
        assert h.counts[3] == 1

    def test_percentile_is_bucket_upper_bound(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.record(10)  # bucket 4, upper bound 15
        h.record(1000)  # bucket 10, upper bound 1023
        assert h.percentile(50) == 15
        assert h.percentile(99) == 15
        assert h.percentile(100) == 1023

    def test_percentile_rejects_out_of_range(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.mean == 0.0
        assert h.percentile(99) == 0
        assert h.summary()["count"] == 0
        assert h.summary()["buckets"] == []

    def test_overflow_values_clamp_to_last_bucket(self):
        h = LatencyHistogram()
        h.record(1 << 60)
        assert h.counts[HISTOGRAM_BUCKETS - 1] == 1
        assert h.total == 1 << 60

    def test_state_is_hashable_and_exact(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (7, 7, 300):
            a.record(v)
            b.record(v)
        assert a.state() == b.state()
        hash(a.state())
        b.record(7)
        assert a.state() != b.state()

    def test_summary_has_tail_quantities(self):
        h = LatencyHistogram()
        for v in range(1, 101):
            h.record(v)
        s = h.summary()
        assert set(s) == {
            "count", "mean", "p50", "p90", "p99", "max", "min", "buckets",
        }
        assert s["p50"] <= s["p90"] <= s["p99"]
        assert s["min"] == 1 and s["max"] == 100


class TestMetricRegistry:
    def test_register_and_snapshot(self):
        r = MetricRegistry()
        c = r.counter("a.events")
        r.gauge("a.depth", lambda: 2, sampled=True)
        h = r.histogram("a.lat")
        c.add(3)
        h.record(10)
        snap = r.snapshot()
        assert snap["a.events"] == 3
        assert snap["a.depth"] == 2
        assert snap["a.lat"]["count"] == 1
        assert "a.events" in r and r.get("a.missing") is None
        assert r.names() == ["a.events", "a.depth", "a.lat"]

    def test_duplicate_name_rejected(self):
        r = MetricRegistry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            r.counter("x")

    def test_sampled_histogram_rejected(self):
        r = MetricRegistry()
        with pytest.raises(ValueError, match="sample a histogram"):
            r.register("h", LatencyHistogram(), sampled=True)

    def test_sampled_items_and_histograms(self):
        r = MetricRegistry()
        r.counter("plain")
        r.counter("hot", sampled=True)
        r.histogram("lat")
        assert [name for name, _ in r.sampled_items()] == ["hot"]
        assert [name for name, _ in r.histograms()] == ["lat"]


class TestIntervalSampler:
    def test_folds_every_due_point(self):
        s = IntervalSampler(10)
        c = Counter()
        s.bind([("c", c)])
        c.add(5)
        s.sample_upto(35)  # due points 10, 20, 30
        assert s.cycles == [10, 20, 30]
        assert s.series["c"] == [5, 5, 5]
        c.add(1)
        s.sample_upto(41)
        assert s.cycles[-1] == 40
        assert s.series["c"][-1] == 6

    def test_window_fold_equals_stepping(self):
        """One big sample_upto == many small ones (the skip contract)."""
        a, b = IntervalSampler(7), IntervalSampler(7)
        ca, cb = Counter(), Counter()
        a.bind([("c", ca)])
        b.bind([("c", cb)])
        a.sample_upto(100)
        for cycle in range(100):
            b.sample_upto(cycle + 1)
        assert a.cycles == b.cycles
        assert a.series == b.series

    def test_decimation_is_deterministic(self, monkeypatch):
        from repro.telemetry import sampler as sampler_mod

        monkeypatch.setattr(sampler_mod, "_SAMPLE_CAP", 8)
        s = IntervalSampler(1)
        c = Counter()
        s.bind([("c", c)])
        for cycle in range(40):
            c.add()
            s.sample_upto(cycle + 2)
        assert len(s.cycles) < 8 + 8  # stays bounded
        # Post-decimation the stride doubled but phase is preserved.
        assert s.every > 1
        assert s.cycles == sorted(s.cycles)
        # The series store is still the object bind() aliased.
        assert s.series["c"] is s._sources[0][0]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            IntervalSampler(0)

    def test_env_interval(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLE_EVERY", raising=False)
        assert sample_interval() == 0
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "128")
        assert sample_interval() == 128
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "nope")
        with pytest.raises(ValueError):
            sample_interval()


class TestTraceRecorder:
    def test_ring_drops_oldest(self):
        t = TraceRecorder(cap=3)
        for i in range(5):
            t.prediction(i, 0, 0x10, 1)
        assert t.dropped == 2
        assert len(t.events) == 3
        assert t.events[0][1] == 2  # oldest two dropped

    def test_event_families(self):
        t = TraceRecorder(cap=16)
        t.command(10, 0, 1, 2, "ACT", 7, 44)
        t.block_episode(20, 3, 0xABC, 100)
        t.prediction(30, 3, 0xABC, 2)
        tags = [e[0] for e in t.events]
        assert tags == ["cmd", "block", "pred"]

    def test_env_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not enabled()
        monkeypatch.setenv("REPRO_TRACE_CAP", "7")
        assert capacity() == 7
        monkeypatch.setenv("REPRO_TRACE_CAP", "0")
        with pytest.raises(ValueError):
            capacity()
        monkeypatch.setenv("REPRO_TRACE_CAP", "xyz")
        with pytest.raises(ValueError):
            capacity()


class TestTelemetryBundle:
    def test_from_env_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLE_EVERY", raising=False)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        t = Telemetry.from_env()
        assert t.sampler is None and t.trace is None
        assert isinstance(t.registry, MetricRegistry)

    def test_from_env_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "64")
        monkeypatch.setenv("REPRO_TRACE", "1")
        t = Telemetry.from_env()
        assert t.sampler is not None and t.sampler.every == 64
        assert t.trace is not None

    def test_config_fingerprint_tracks_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLE_EVERY", raising=False)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        off = config_fingerprint()
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "64")
        assert config_fingerprint() != off

    def test_fingerprint_changes_engine_cache_key(self, monkeypatch):
        from repro.sim.engine import RunSpec, spec_key

        monkeypatch.delenv("REPRO_SAMPLE_EVERY", raising=False)
        spec = RunSpec(kind="parallel", workload="fft")
        plain = spec_key(spec)
        monkeypatch.setenv("REPRO_SAMPLE_EVERY", "64")
        assert spec_key(spec) != plain
