"""Process-safety analyzer: CONC rules, fixtures, and the repo contract.

Mirrors ``test_semantic_analyzer.py``'s three layers for the
concurrency pass:

* unit tests of the pass-specific machinery on inline sources —
  reachability through helpers, shadow-safe global-write detection,
  classmethod-prefix resolution, the pickle-hook escape hatch;
* the seeded-fixture contract — every CONC rule fires on its module in
  ``tests/fixtures/conc_hazards/`` and stays silent on the clean
  counter-examples, with a suppression counted rather than reported;
* the repo contract — ``src/repro`` passes ``analyze --concurrency``
  clean at HEAD, and every allowlist entry in the pass is load-bearing
  (emptying an allowlist must surface findings, proving the entries
  are suppressing something real rather than rotting).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.semantic import (
    CONCURRENCY_RULES,
    SEMANTIC_RULES,
    analyze_paths,
    analyze_source,
)
from repro.analysis.semantic import concurrency as conc_mod
from repro.analysis.suppress import known_rule_ids

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
FIXTURES = REPO / "tests" / "fixtures" / "conc_hazards"


def rules_by_file(report):
    out: dict[str, set[str]] = {}
    for f in report.findings:
        out.setdefault(Path(f.path).name, set()).add(f.rule)
    return out


def conc_findings(source: str, path: str = "mod.py"):
    report = analyze_source(source, path=path, select=set(CONCURRENCY_RULES))
    return report.findings


POOL_PREAMBLE = "from concurrent.futures import ProcessPoolExecutor\n"


# ----------------------------------------------------------------- registry


class TestRegistry:
    def test_conc_rules_are_registered(self):
        assert CONCURRENCY_RULES == {
            "CONC001",
            "CONC002",
            "CONC003",
            "CONC004",
            "CONC005",
        }
        assert CONCURRENCY_RULES <= set(SEMANTIC_RULES)

    def test_suppression_grammar_knows_conc_rules(self):
        # suppress.known_rule_ids() aggregates SEMANTIC_RULES, so
        # `# repro-lint: disable=CONC003 ...` is a valid suppression.
        assert CONCURRENCY_RULES <= known_rule_ids()


# ----------------------------------------------------------- fixture contract


class TestHazardFixtures:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES])

    def test_every_conc_rule_fires(self, report):
        fired = {f.rule for f in report.findings}
        assert fired == set(CONCURRENCY_RULES)

    def test_rule_by_rule_file_mapping(self, report):
        by_file = rules_by_file(report)
        assert by_file["conc001_global_state.py"] == {"CONC001"}
        assert by_file["conc002_fork_capture.py"] == {"CONC002"}
        assert by_file["conc003_torn_write.py"] == {"CONC003"}
        assert by_file["conc004_pickle_surface.py"] == {"CONC004"}
        assert by_file["conc005_env_read.py"] == {"CONC005"}

    def test_conc001_catches_both_globals_via_helper(self, report):
        msgs = [
            f.message
            for f in report.findings
            if f.rule == "CONC001"
        ]
        # Reachability-based: the writes live in `_bump`, two hops from
        # the pool.map entrypoint.
        assert any("_TOTALS" in m for m in msgs)
        assert any("_SEEN" in m for m in msgs)

    def test_conc002_catches_all_four_capture_kinds(self, report):
        msgs = " | ".join(
            f.message for f in report.findings if f.rule == "CONC002"
        ).lower()
        assert "lambda" in msgs
        assert "bound method" in msgs
        assert "rng" in msgs or "random" in msgs
        assert "handle" in msgs or "open" in msgs
        assert sum(f.rule == "CONC002" for f in report.findings) == 4

    def test_conc003_catches_all_three_write_shapes(self, report):
        lines = sorted(
            f.line for f in report.findings if f.rule == "CONC003"
        )
        # raw os.replace, write-mode manifest open, buffered log append
        assert len(lines) == 3

    def test_conc004_walk_is_transitive(self, report):
        # TagBag is only reachable through the annotation on
        # RunSpec.tags; its raw-set write must still be flagged.
        tagbag = [
            f
            for f in report.findings
            if f.rule == "CONC004" and "TagBag" in f.message
        ]
        assert tagbag

    def test_clean_counter_examples_stay_clean(self, report):
        flagged = {Path(f.path).name for f in report.findings}
        assert "clean.py" not in flagged
        assert "__init__.py" not in flagged
        assert "suppressed.py" not in flagged

    def test_suppressed_finding_is_counted_not_reported(self, report):
        sup = [
            f
            for f in report.suppressed
            if Path(f.path).name == "suppressed.py"
        ]
        assert [f.rule for f in sup] == ["CONC003"]


# ------------------------------------------------------------ CONC001 units


class TestGlobalWriteDetection:
    def test_subscript_write_to_global_is_not_shadowed(self):
        # `_CACHE[k] = v` must count as a write to the module global
        # _CACHE, not as a local binding of the name _CACHE.
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                _CACHE = {}

                def work(k):
                    _CACHE[k] = 1

                def sweep(items):
                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC001"]

    def test_local_named_like_global_is_silent(self):
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                _CACHE = {}

                def work(k):
                    _CACHE = {}
                    _CACHE[k] = 1
                    return _CACHE

                def sweep(items):
                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                """
            )
        )
        assert findings == []

    def test_parent_only_writer_is_silent(self):
        # The same global written by code the pool never reaches is
        # legal: the hazard is fork-shared state, not globals per se.
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                _CACHE = {}

                def work(k):
                    return k

                def parent_memo(k):
                    _CACHE[k] = 1

                def sweep(items):
                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                """
            )
        )
        assert findings == []

    def test_fork_local_allowlist_is_honoured(self, monkeypatch):
        src = POOL_PREAMBLE + textwrap.dedent(
            """
            _MEMO = {}

            def work(k):
                _MEMO[k] = 1

            def sweep(items):
                with ProcessPoolExecutor() as pool:
                    pool.map(work, items)
            """
        )
        assert [f.rule for f in conc_findings(src)] == ["CONC001"]
        monkeypatch.setitem(
            conc_mod.FORK_LOCAL_GLOBALS,
            ("mod", "_MEMO"),
            "test: pure per-process memo",
        )
        assert conc_findings(src) == []


# ------------------------------------------------------------ CONC002 units


class TestForkCapture:
    def test_nested_def_closure_is_flagged(self):
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                def sweep(items):
                    bias = 3

                    def work(item):
                        return item + bias

                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC002"]

    def test_assigned_pool_alias_is_tracked(self):
        # Pool detection must see `pool = ProcessPoolExecutor()`
        # assignments, not only `with` items.
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                def sweep(items):
                    pool = ProcessPoolExecutor()
                    pool.submit(lambda i: i, items[0])
                    pool.shutdown()
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC002"]

    def test_module_function_payload_is_clean(self):
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                def work(item):
                    return item

                def sweep(items):
                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                """
            )
        )
        assert findings == []


# ------------------------------------------------------------ CONC003 units


class TestAtomicPersistence:
    def test_raw_os_replace_fires_anywhere(self):
        findings = conc_findings(
            textwrap.dedent(
                """
                import os

                def publish(tmp, path):
                    os.replace(tmp, path)
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC003"]

    def test_atomicio_module_itself_is_exempt(self):
        source = (SRC / "util" / "atomicio.py").read_text()
        report = analyze_paths([SRC / "util" / "atomicio.py"])
        assert "os.replace(" in source
        assert [f for f in report.findings if f.rule == "CONC003"] == []

    def test_shared_token_in_path_expression_fires(self):
        findings = conc_findings(
            textwrap.dedent(
                """
                def save(directory, payload):
                    with open(directory + "/MANIFEST.json", "w") as fh:
                        fh.write(payload)
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC003"]

    def test_shared_token_via_local_assign_fires(self):
        # One-level propagation: the token lives in the expression
        # assigned to the local that open() receives.
        findings = conc_findings(
            textwrap.dedent(
                """
                def save(root, payload):
                    target = root + "/index.json"
                    with open(target, "w") as fh:
                        fh.write(payload)
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC003"]

    def test_unshared_path_is_clean(self):
        findings = conc_findings(
            textwrap.dedent(
                """
                def export(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)
                """
            )
        )
        assert findings == []

    def test_writer_allowlist_is_honoured(self, monkeypatch):
        src = textwrap.dedent(
            """
            def write_manifest(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
            """
        )
        assert [f.rule for f in conc_findings(src)] == ["CONC003"]
        monkeypatch.setitem(
            conc_mod.WRITER_ALLOWLIST,
            "mod.write_manifest",
            "test: single-writer artifact",
        )
        assert conc_findings(src) == []


# ------------------------------------------------------------ CONC004 units


class TestPickleSurface:
    def test_getstate_hook_exempts_class(self):
        src = textwrap.dedent(
            """
            class RunSpec:
                def __init__(self, names):
                    self.names = set(names)
            """
        )
        assert [f.rule for f in conc_findings(src)] == ["CONC004"]
        hooked = textwrap.dedent(
            """
            class RunSpec:
                def __init__(self, names):
                    self.names = set(names)

                def __getstate__(self):
                    return sorted(self.names)
            """
        )
        assert conc_findings(hooked) == []

    def test_set_annotation_on_root_fires(self):
        findings = conc_findings(
            textwrap.dedent(
                """
                from dataclasses import dataclass

                @dataclass
                class SimResult:
                    flags: set
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC004"]

    def test_tuple_fields_are_clean(self):
        findings = conc_findings(
            textwrap.dedent(
                """
                from dataclasses import dataclass

                @dataclass
                class RunSpec:
                    flags: tuple = ()
                    seed: int = 1
                """
            )
        )
        assert findings == []


# ------------------------------------------------------------ CONC005 units


class TestEnvReads:
    def test_env_read_via_helper_is_reachable(self):
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                import os

                def scale():
                    return int(os.environ.get("S", "1"))

                def work(item):
                    return item * scale()

                def sweep(items):
                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC005"]

    def test_parent_side_env_read_is_silent(self):
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                import os

                def work(item):
                    return item

                def sweep(items):
                    scale = int(os.environ.get("S", "1"))
                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                    return scale
                """
            )
        )
        assert findings == []

    def test_env_accessor_allowlist_is_honoured(self, monkeypatch):
        src = POOL_PREAMBLE + textwrap.dedent(
            """
            import os

            def work(item):
                return item * int(os.environ.get("S", "1"))

            def sweep(items):
                with ProcessPoolExecutor() as pool:
                    pool.map(work, items)
            """
        )
        assert [f.rule for f in conc_findings(src)] == ["CONC005"]
        monkeypatch.setitem(
            conc_mod.ENV_ACCESSORS,
            "mod.work",
            "test: sanctioned accessor",
        )
        assert conc_findings(src) == []


# --------------------------------------------------------- classmethod edges


class TestClassmethodResolution:
    def test_class_prefixed_call_folds_class_methods_in(self):
        # Telemetry.from_env()-style dispatch: a Class.method() call
        # must pull the whole class into the reachable set, so env
        # reads inside *other* methods of that class are post-fork.
        findings = conc_findings(
            POOL_PREAMBLE
            + textwrap.dedent(
                """
                import os

                class Config:
                    @classmethod
                    def from_env(cls):
                        return cls()

                    def scale(self):
                        return int(os.environ.get("S", "1"))

                def work(item):
                    return Config.from_env().scale() * item

                def sweep(items):
                    with ProcessPoolExecutor() as pool:
                        pool.map(work, items)
                """
            )
        )
        assert [f.rule for f in findings] == ["CONC005"]


# -------------------------------------------------------------- repo contract


class TestRepoContract:
    def test_src_repro_is_conc_clean_at_head(self):
        report = analyze_paths([SRC], select=set(CONCURRENCY_RULES))
        assert report.errors == []
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_no_unexplained_suppressions_in_src(self):
        # CONC suppressions in src/repro are allowed only with a
        # rationale, and currently there are none: the allowlists in
        # the pass itself carry every sanctioned exception.
        report = analyze_paths([SRC], select=set(CONCURRENCY_RULES))
        conc_sup = [
            f for f in report.suppressed if f.rule in CONCURRENCY_RULES
        ]
        assert conc_sup == []

    def test_every_allowlist_entry_is_load_bearing(self, monkeypatch):
        # Emptying every allowlist must surface at least one finding
        # per allowlist, proving the entries suppress something real.
        monkeypatch.setattr(conc_mod, "FORK_LOCAL_GLOBALS", {})
        monkeypatch.setattr(conc_mod, "ENV_ACCESSORS", {})
        monkeypatch.setattr(conc_mod, "WRITER_ALLOWLIST", {})
        report = analyze_paths([SRC], select=set(CONCURRENCY_RULES))
        fired = {f.rule for f in report.findings}
        assert "CONC001" in fired  # FORK_LOCAL_GLOBALS entries
        assert "CONC005" in fired  # ENV_ACCESSORS entries
        assert "CONC003" in fired  # WRITER_ALLOWLIST entries
