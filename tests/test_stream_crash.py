"""Crash-safety: a SIGKILL'd streaming run leaves a usable prefix.

Segments are sealed with flush+fsync and recorded by an atomically
replaced manifest, so a crash can tear at most the *active* (unlisted)
segment.  Everything the manifest names must parse clean, the export CLI
must refuse the torn tail with a clear error (not a stack trace), and
``--allow-torn`` must salvage the sealed prefix.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.telemetry import stream as stream_mod
from repro.telemetry.trace import validate_chrome_trace

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _cli_env(stream_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if stream_dir is not None:
        env.update({
            "REPRO_STREAM_DIR": str(stream_dir),
            "REPRO_STREAM_SEGMENT": "64",
            "REPRO_TRACE": "1",
            "REPRO_SAMPLE_EVERY": "64",
            "REPRO_NO_CACHE": "1",
        })
    return env


_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.config import SimScale
from repro.sim.runner import run_parallel_workload

scale = SimScale(instructions_per_core=2_000_000, warmup_instructions=0,
                 seed=11)
run_parallel_workload("fft", scale=scale)
"""


def _run_trace_cli(stream_dir, out, *extra):
    return subprocess.run(
        [sys.executable, "-m", "repro", "trace",
         "--from-stream", str(stream_dir), "--out", str(out), *extra],
        env=_cli_env(), capture_output=True, text=True, timeout=120,
    )


class TestSigkillMidRun:
    @pytest.fixture(scope="class")
    def killed_stream(self, tmp_path_factory):
        """Start a long streaming run, SIGKILL it after one sealed segment."""
        stream_dir = tmp_path_factory.mktemp("killed")
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD.format(src=_SRC)],
            env=_cli_env(stream_dir),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                manifest = stream_mod.read_manifest(stream_dir,
                                                    missing_ok=True)
                if manifest and manifest["events"]["segments"]:
                    break
                if child.poll() is not None:
                    raise RuntimeError(
                        "streaming child exited before sealing a segment"
                    )
                time.sleep(0.05)
            else:
                raise RuntimeError("no sealed segment within the deadline")
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        return stream_dir

    def test_manifest_survives_and_reports_running(self, killed_stream):
        manifest = stream_mod.read_manifest(killed_stream)
        assert manifest["status"] == "running"
        assert manifest["events"]["segments"]

    def test_sealed_segments_parse_clean(self, killed_stream):
        manifest = stream_mod.read_manifest(killed_stream)
        for entry in manifest["events"]["segments"]:
            path = killed_stream / entry["file"]
            text = path.read_text()
            assert text.endswith("\n"), "sealed segment lacks final newline"
            lines = text.splitlines()
            assert len(lines) == entry["count"]
            for line in lines:
                json.loads(line)

    def test_trace_cli_refuses_torn_tail_clearly(self, killed_stream,
                                                 tmp_path):
        proc = _run_trace_cli(killed_stream, tmp_path / "out.json")
        assert proc.returncode == 1
        assert "error:" in proc.stderr
        assert "--allow-torn" in proc.stderr
        assert "Traceback" not in proc.stderr
        assert "Traceback" not in proc.stdout

    def test_allow_torn_salvages_sealed_prefix(self, killed_stream,
                                               tmp_path):
        out = tmp_path / "salvaged.json"
        proc = _run_trace_cli(killed_stream, out, "--allow-torn")
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        manifest = stream_mod.read_manifest(killed_stream)
        sealed = sum(s["count"] for s in manifest["events"]["segments"])
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert len(events) >= sealed


def _event(i: int) -> tuple:
    return ("cmd", 10 * i, 0, 0, i % 4, "ACT", i, 6)


class TestTornTailDeterministic:
    """Hand-built torn tails, independent of scheduling/timing."""

    @pytest.fixture
    def torn_dir(self, tmp_path):
        writer = stream_mod.StreamWriter(tmp_path, segment_cap=4,
                                         flush_cycles=1 << 40)
        writer.begin("torn-test", [])
        for i in range(4):  # exactly one sealed segment
            writer.event(_event(i))
        # A crash mid-write: one complete line plus half a record in the
        # next (active, unlisted) segment file.
        active = tmp_path / "events-000001.jsonl"
        whole = json.dumps({"type": "rob_block", "ts": 50, "core": 0,
                            "pc": 64, "dur": 9}, sort_keys=True)
        active.write_text(whole + "\n" + '{"type": "dram_comm')
        return tmp_path

    def test_strict_read_raises_torn_tail(self, torn_dir):
        with pytest.raises(stream_mod.TornTailError):
            list(stream_mod.iter_records(torn_dir, "events"))

    def test_tolerant_read_salvages_complete_lines(self, torn_dir):
        records = list(
            stream_mod.iter_records(torn_dir, "events", tolerant=True)
        )
        assert len(records) == 5
        assert records[-1]["type"] == "rob_block"

    def test_finalize_refuses_then_salvages(self, torn_dir, tmp_path):
        out = tmp_path / "chrome.json"
        with pytest.raises(stream_mod.TornTailError):
            stream_mod.finalize_chrome(torn_dir, out)
        summary = stream_mod.finalize_chrome(torn_dir, out, allow_torn=True)
        assert summary["events"] == 5
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []

    def test_corrupt_sealed_segment_is_a_hard_error(self, torn_dir):
        manifest = stream_mod.read_manifest(torn_dir)
        sealed = torn_dir / manifest["events"]["segments"][0]["file"]
        sealed.write_text("not json\n")
        with pytest.raises(stream_mod.StreamError, match="corrupt"):
            list(stream_mod.iter_records(torn_dir, "events",
                                         tolerant=True))

    def test_abort_removes_unsealed_tail(self, tmp_path):
        writer = stream_mod.StreamWriter(tmp_path, segment_cap=4,
                                         flush_cycles=1 << 40)
        writer.begin("abort-test", [])
        for i in range(6):  # one sealed segment + two buffered events
            writer.event(_event(i))
        writer.abort()
        manifest = stream_mod.read_manifest(tmp_path)
        assert manifest["status"] == "failed"
        on_disk = sorted(
            p.name for p in tmp_path.glob("events-*.jsonl")
        )
        assert on_disk == ["events-000000.jsonl"]

    def test_system_aborts_stream_on_failure(self, tmp_path, monkeypatch):
        """A mid-run crash inside System.run tears down the stream."""
        from repro.config import SimScale, SystemConfig
        from repro.sim.system import System
        from repro.workloads.parallel import parallel_traces

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_STREAM_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_STREAM_SEGMENT", "8")
        config = SystemConfig.parallel_default()
        traces = parallel_traces("fft", config.cores, 400, seed=11)
        system = System(config, traces)

        calls = {"n": 0}

        def exploding(original):
            def step(now):
                calls["n"] += 1
                if calls["n"] > 200:
                    raise RuntimeError("injected mid-run failure")
                return original(now)

            return step

        # Cover every engine's DRAM clocking path (naive/fast use step,
        # the event engine uses step_event).
        monkeypatch.setattr(
            system.memory, "step", exploding(system.memory.step)
        )
        monkeypatch.setattr(
            system.memory, "step_event",
            exploding(system.memory.step_event),
        )
        with pytest.raises(RuntimeError, match="injected"):
            system.run()
        manifest = stream_mod.read_manifest(tmp_path)
        assert manifest["status"] == "failed"
        # No unsealed active files left behind.
        for path in tmp_path.glob("*.jsonl"):
            sealed_names = {
                s["file"]
                for kind in ("events", "samples")
                for s in manifest[kind]["segments"]
            }
            assert path.name in sealed_names
