"""``repro bench``: record schema, comparison semantics, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro import bench


@pytest.fixture(scope="module")
def record(tmp_path_factory):
    """One real (tiny) suite run, shared across the module's tests."""
    return bench.run_suite(
        repeats=2, instructions=600, seed=3,
        cells="fft/fr-fcfs/event,fft/fr-fcfs/naive",
    )


class TestRunSuite:
    def test_record_is_schema_valid(self, record):
        assert bench.validate_record(record) == []

    def test_cells_carry_measurements(self, record):
        assert {c["name"] for c in record["cells"]} == {
            "fft/fr-fcfs/event", "fft/fr-fcfs/naive",
        }
        for cell in record["cells"]:
            assert len(cell["wall_seconds"]) == 2
            assert cell["best_wall_seconds"] == pytest.approx(
                min(cell["wall_seconds"])
            )
            assert cell["cycles"] > 0
            assert cell["host_perf"]["counters"]["visited_cycles"] > 0

    def test_engines_agree_on_fingerprint(self, record):
        """The bench doubles as an identity check: the same cell on two
        engines must digest to the same result fingerprint."""
        digests = {c["fingerprint"] for c in record["cells"]}
        assert len(digests) == 1

    def test_metadata(self, record):
        metadata = record["metadata"]
        assert metadata["machine"]
        assert metadata["python"]
        assert metadata["created_unix"] > 0

    def test_env_is_restored(self, record, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_ENGINE", "fast")
        monkeypatch.setenv("REPRO_FLEET_DIR", "/tmp/should-survive")
        bench.run_suite(repeats=1, instructions=300,
                        cells="fft/fr-fcfs/event")
        assert os.environ["REPRO_ENGINE"] == "fast"
        assert os.environ["REPRO_FLEET_DIR"] == "/tmp/should-survive"

    def test_unknown_cell_is_an_error(self):
        with pytest.raises(ValueError, match="unknown bench cells"):
            bench.run_suite(repeats=1, cells="not-a-cell")

    def test_quick_subset_is_nonempty_and_proper(self):
        quick = bench._cells(None, quick=True)
        full = bench._cells(None, quick=False)
        assert quick
        assert len(quick) < len(full)
        assert {c.name for c in quick} <= {c.name for c in full}


class TestRecordFiles:
    def test_save_load_roundtrip(self, record, tmp_path):
        path = tmp_path / "BENCH_8.json"
        bench.save_record(record, path)
        assert bench.load_record(path) == json.loads(path.read_text())

    def test_numbering_starts_at_8_and_advances(self, tmp_path):
        assert bench.next_record_path(tmp_path).name == "BENCH_8.json"
        (tmp_path / "BENCH_11.json").write_text("{}")
        assert bench.next_record_path(tmp_path).name == "BENCH_12.json"

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "BENCH_9.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError, match="not a valid bench record"):
            bench.load_record(path)

    def test_validate_flags_missing_cell_fields(self, record):
        broken = json.loads(json.dumps(record))
        del broken["cells"][0]["fingerprint"]
        problems = bench.validate_record(broken)
        assert any("fingerprint" in p for p in problems)


def _doctor(record, factor: float) -> dict:
    slowed = json.loads(json.dumps(record))
    for cell in slowed["cells"]:
        cell["wall_seconds"] = [w * factor for w in cell["wall_seconds"]]
        cell["best_wall_seconds"] = min(cell["wall_seconds"])
    return slowed


class TestCompare:
    def test_self_compare_is_clean(self, record):
        report = bench.compare_records(record, record)
        assert report["ok"]
        assert report["regressions"] == []
        assert not report["warnings"]

    def test_injected_slowdown_regresses(self, record):
        report = bench.compare_records(record, _doctor(record, 3.0))
        assert not report["ok"]
        assert set(report["regressions"]) == {
            c["name"] for c in record["cells"]
        }

    def test_speedup_is_not_a_regression(self, record):
        report = bench.compare_records(record, _doctor(record, 0.2))
        assert report["ok"]

    def test_absolute_floor_swallows_micro_jitter(self, record):
        """A 2x blowup on a sub-floor cell is noise, not a page."""
        tiny_old = json.loads(json.dumps(record))
        for cell in tiny_old["cells"]:
            cell["wall_seconds"] = [0.001, 0.001]
            cell["best_wall_seconds"] = 0.001
        report = bench.compare_records(tiny_old, _doctor(tiny_old, 2.0))
        assert report["ok"]

    def test_missing_cells_warn_not_fail(self, record):
        partial = json.loads(json.dumps(record))
        partial["cells"] = partial["cells"][:1]
        report = bench.compare_records(record, partial)
        assert report["ok"]
        assert any("OLD but not NEW" in w for w in report["warnings"])

    def test_fingerprint_mismatch_warns(self, record):
        changed = json.loads(json.dumps(record))
        changed["cells"][0]["fingerprint"] = "deadbeefdeadbeef"
        report = bench.compare_records(record, changed)
        assert any("fingerprint" in w for w in report["warnings"])

    def test_scale_mismatch_warns(self, record):
        other = json.loads(json.dumps(record))
        other["instructions"] = 999_999
        report = bench.compare_records(record, other)
        assert any("different scales" in w for w in report["warnings"])


class TestCli:
    def _args(self, **overrides):
        import argparse

        defaults = dict(
            quick=True, repeats=1, instructions=300, seed=1,
            cells="fft/fr-fcfs/event", out=None, compare=None,
            threshold=0.25,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_run_writes_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_8.json"
        assert bench.main(self._args(out=str(out))) == 0
        assert bench.validate_record(json.loads(out.read_text())) == []
        assert "bench record" in capsys.readouterr().out

    def test_compare_exit_codes(self, record, tmp_path, capsys):
        old = tmp_path / "old.json"
        bench.save_record(record, old)
        slow = tmp_path / "slow.json"
        bench.save_record(_doctor(record, 3.0), slow)
        assert bench.main(self._args(compare=(str(old), str(old)))) == 0
        assert bench.main(self._args(compare=(str(old), str(slow)))) == 1
        assert "REGRESSED" in capsys.readouterr().out
