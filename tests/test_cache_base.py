"""Set-associative cache array with LRU replacement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.cache.base import SetAssociativeCache


def small_cache(ways=2, sets=4, line=64):
    return SetAssociativeCache(
        CacheConfig(size_bytes=ways * sets * line, line_bytes=line, ways=ways,
                    round_trip_latency=1, mshr_entries=4)
    )


class TestBasics:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(100) is None
        c.insert(100)
        assert c.lookup(100) is not None

    def test_line_granularity(self):
        c = small_cache()
        c.insert(128)
        assert c.lookup(128 + 63) is not None
        assert c.lookup(128 + 64) is None

    def test_line_addr(self):
        c = small_cache()
        assert c.line_addr(130) == 128
        assert c.line_addr(64) == 64

    def test_hit_miss_counters(self):
        c = small_cache()
        c.lookup(0)
        c.insert(0)
        c.lookup(0)
        assert c.misses == 1
        assert c.hits == 1

    def test_peek_does_not_touch(self):
        c = small_cache()
        c.insert(0)
        hits = c.hits
        assert c.peek(0) is not None
        assert c.hits == hits


class TestLru:
    def test_evicts_least_recently_used(self):
        c = small_cache(ways=2, sets=1)
        c.insert(0)
        c.insert(64)
        c.lookup(0)          # 0 is now MRU
        victim = c.insert(128)
        assert victim is not None
        assert victim[0] == 64

    def test_insert_refreshes_existing(self):
        c = small_cache(ways=2, sets=1)
        c.insert(0)
        c.insert(64)
        c.insert(0)          # refresh, no eviction
        victim = c.insert(128)
        assert victim[0] == 64

    def test_refresh_preserves_dirty(self):
        c = small_cache()
        c.insert(0, dirty=True)
        c.insert(0, dirty=False)
        assert c.peek(0).dirty


class TestInvalidate:
    def test_removes_line(self):
        c = small_cache()
        c.insert(0)
        line = c.invalidate(0)
        assert line is not None
        assert c.peek(0) is None

    def test_absent_returns_none(self):
        c = small_cache()
        assert c.invalidate(0) is None


class TestState:
    def test_state_stored(self):
        c = small_cache()
        c.insert(0, state="M", dirty=True)
        line = c.peek(0)
        assert line.state == "M"
        assert line.dirty

    def test_resident_lines(self):
        c = small_cache()
        c.insert(0)
        c.insert(64)
        assert c.resident_lines() == 2


class TestDetStateIncremental:
    """The incrementally maintained det_state words must always equal
    the full tag-array walk (``det_state_scan``) they replaced."""

    def test_fresh_cache(self):
        c = small_cache()
        assert c.det_state() == c.det_state_scan()

    def test_mediated_mutators_keep_words_consistent(self):
        c = small_cache()
        c.insert(0, state="S")
        c.insert(64, state="S", dirty=True)
        line = c.peek(0)
        c.set_line_state(line, "M")
        assert c.det_state() == c.det_state_scan()
        c.set_line_dirty(line)
        assert c.det_state() == c.det_state_scan()
        c.set_line_dirty(c.peek(64), False)
        assert c.det_state() == c.det_state_scan()

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["lookup", "insert", "insert_dirty", "insert_m",
                     "invalidate", "state", "dirty", "clean"]
                ),
                st.integers(0, 1023),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_random_ops_match_scan(self, ops):
        c = small_cache(ways=2, sets=2)
        for op, addr in ops:
            if op == "lookup":
                c.lookup(addr)
            elif op == "insert":
                c.insert(addr)
            elif op == "insert_dirty":
                c.insert(addr, dirty=True)
            elif op == "insert_m":
                c.insert(addr, state="M", dirty=True)
            elif op == "invalidate":
                c.invalidate(addr)
            else:
                line = c.peek(addr)
                if line is None:
                    continue
                if op == "state":
                    c.set_line_state(line, "E")
                elif op == "dirty":
                    c.set_line_dirty(line)
                else:
                    c.set_line_dirty(line, False)
            assert c.det_state() == c.det_state_scan()


@settings(max_examples=50)
@given(st.lists(st.integers(0, 4095), min_size=1, max_size=200))
def test_capacity_and_contents_match_reference(addresses):
    """Property: occupancy bounded; contents match a reference LRU model."""
    ways, sets, line = 2, 4, 64
    c = small_cache(ways=ways, sets=sets, line=line)
    reference = {s: [] for s in range(sets)}  # per-set MRU-last lists
    for addr in addresses:
        la = addr - addr % line
        s = (la // line) % sets
        if c.lookup(la) is None:
            c.insert(la)
            if la in reference[s]:
                reference[s].remove(la)
            reference[s].append(la)
            if len(reference[s]) > ways:
                reference[s].pop(0)
        else:
            reference[s].remove(la)
            reference[s].append(la)
    for s in range(sets):
        for la in reference[s]:
            assert c.peek(la) is not None
    assert c.resident_lines() == sum(len(v) for v in reference.values())
