"""Extension modules: ATLAS, Minimalist, Fields-like predictor, report, CLI."""

import pytest

from repro.core.fields import FieldsLikePredictor, FieldsLikeProvider
from repro.dram.addressmap import DramLocation
from repro.dram.command import CandidateCommand, CommandKind
from repro.dram.transaction import Transaction
from repro.sched.atlas import AtlasScheduler
from repro.sched.minimalist import MinimalistScheduler


class FakeController:
    def __init__(self, reads=()):
        self.read_queue = list(reads)
        self.write_queue = []

    class config:
        row_idle_precharge_cycles = 12


def txn(seq, core=0, is_prefetch=False):
    t = Transaction(0, DramLocation(0, 0, 0, 0, 0), core=core,
                    is_prefetch=is_prefetch)
    t.seq = seq
    t.arrival = 0
    return t


def cas(t):
    return CandidateCommand(CommandKind.READ, t, 0, 0, 0)


class TestAtlas:
    def test_least_attained_service_first(self):
        sched = AtlasScheduler(threads=2)
        # Core 1 consumed lots of bus time.
        for i in range(20):
            sched.on_command(cas(txn(i, core=1)), 0)
        a = txn(100, core=0)
        b = txn(50, core=1)
        chosen = sched.select([cas(a), cas(b)], FakeController([a, b]), 0)
        assert chosen.txn is a

    def test_quantum_decays_history(self):
        sched = AtlasScheduler(quantum=10, decay=0.5, threads=2)
        for i in range(8):
            sched.on_command(cas(txn(i, core=0)), 0)
        before = sched._rank(0)
        sched._tick(10)
        assert sched._rank(0) < before
        assert sched.quanta == 1

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            AtlasScheduler(decay=0.0)


class TestMinimalist:
    def test_low_mlp_thread_first(self):
        sched = MinimalistScheduler()
        heavy = [txn(i, core=0) for i in range(5)]
        light = txn(10, core=1)
        ctrl = FakeController(heavy + [light])
        chosen = sched.select([cas(heavy[0]), cas(light)], ctrl, 0)
        assert chosen.txn is light

    def test_demand_beats_prefetch(self):
        sched = MinimalistScheduler()
        pf = txn(1, core=0, is_prefetch=True)
        demand = txn(2, core=0)
        ctrl = FakeController([pf, demand])
        chosen = sched.select([cas(pf), cas(demand)], ctrl, 0)
        assert chosen.txn is demand


class TestFieldsLike:
    def test_marks_long_latency_loads(self):
        p = FieldsLikePredictor(latency_threshold=40, mark_ratio=0.5)
        for _ in range(4):
            p.record_latency(7, 100)
        assert p.is_critical(7)

    def test_short_latency_loads_unmarked(self):
        p = FieldsLikePredictor(latency_threshold=40, mark_ratio=0.5)
        for _ in range(10):
            p.record_latency(7, 3)
        assert not p.is_critical(7)

    def test_does_not_differentiate_among_misses(self):
        # The paper's exclusion argument: two loads with very different
        # stall magnitudes get the same binary answer.
        p = FieldsLikePredictor(latency_threshold=40, mark_ratio=0.2)
        for _ in range(5):
            p.record_latency(1, 60)      # barely long
            p.record_latency(2, 5000)    # enormously long
        assert p.is_critical(1) == p.is_critical(2) is True

    def test_provider_annotation(self):
        prov = FieldsLikeProvider(latency_threshold=40, mark_ratio=0.2)
        assert prov.annotate(9) == (False, 0)
        prov.on_blocked_commit(9, 200, 0)
        assert prov.annotate(9) == (True, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FieldsLikePredictor(latency_threshold=0)
        with pytest.raises(ValueError):
            FieldsLikePredictor(mark_ratio=0.0)
        with pytest.raises(ValueError):
            FieldsLikePredictor(entries=100)


class TestReport:
    def _result(self):
        from repro.experiments.common import ExperimentResult

        return ExperimentResult(
            "demo", "Demo", ["name", "speedup"],
            [{"name": "a", "speedup": 1.25}, {"name": "b", "speedup": 0.9}],
            notes="note",
        )

    def test_markdown(self):
        from repro.sim.report import to_markdown

        md = to_markdown(self._result())
        assert "| name | speedup |" in md
        assert "| a | 1.250 |" in md
        assert "*note*" in md

    def test_csv(self):
        from repro.sim.report import to_csv

        text = to_csv(self._result())
        assert text.splitlines()[0] == "name,speedup"
        assert "a,1.250" in text

    def test_bar_chart(self):
        from repro.sim.report import bar_chart

        chart = bar_chart(self._result(), "name", "speedup")
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a")
        assert "#" in lines[0]


class TestCli:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fr-fcfs" in out
        assert "fig4" in out

    def test_experiment_overhead_markdown(self, capsys):
        from repro.__main__ import main

        assert main(["experiment", "overhead", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| predictor |" in out

    def test_run_command(self, capsys, monkeypatch):
        from repro.__main__ import main
        from repro.workloads.synthetic import clear_trace_cache

        clear_trace_cache()
        assert main(["run", "radix", "--instructions", "700"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        clear_trace_cache()
