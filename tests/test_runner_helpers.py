"""Runner convenience helpers."""

import pytest

from repro.config import SimScale
from repro.sim.runner import parallel_average_speedup
from repro.workloads.synthetic import clear_trace_cache

TINY = SimScale(instructions_per_core=700, warmup_instructions=100)


@pytest.fixture(autouse=True)
def _fresh():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestParallelAverageSpeedup:
    def test_shape(self):
        out = parallel_average_speedup(
            ("radix",), "casras-crit",
            provider_spec=("cbp", {"entries": 64}), scale=TINY,
        )
        assert set(out) == {"per_app", "average"}
        assert set(out["per_app"]) == {"radix"}
        assert out["average"] == out["per_app"]["radix"]
        assert out["average"] > 0.5

    def test_self_comparison_is_unity(self):
        out = parallel_average_speedup(("radix",), "fr-fcfs", scale=TINY)
        assert out["average"] == pytest.approx(1.0)

    def test_empty_apps(self):
        out = parallel_average_speedup((), "fr-fcfs", scale=TINY)
        assert out["average"] == 0.0
