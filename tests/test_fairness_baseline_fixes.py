"""Regression tests for the fairness-baseline correctness fixes.

Three long-standing bugs skewed the baselines every fairness metric is
normalised against:

1. ``run_application_alone`` silently dropped ``provider_spec`` and
   ``scheduler_kwargs``, so "alone" baselines ran on a different machine
   than the shared run being normalised;
2. ``ChannelStats`` only sampled queue occupancy on non-empty cycles,
   biasing mean occupancy upward;
3. ``SimResult.blocked_cycle_fraction`` counted idle cores (committed
   nothing) in its denominator via ``max(1, finish)``.
"""

from __future__ import annotations

from repro.config import SimScale, SystemConfig
from repro.cpu.core import CoreStats
from repro.cpu.instruction import INT, LOAD, Trace
from repro.sim.runner import run_application_alone
from repro.sim.stats import SimResult
from repro.sim.system import System
from repro.workloads.multiprog import BUNDLES

SCALE = SimScale(instructions_per_core=600, warmup_instructions=0, seed=9)


def make_compute_trace(n=500, pc_base=0):
    trace = Trace("compute")
    for i in range(n):
        trace.append(INT, pc_base + (i % 40), 0, 1 if i else 0)
    return trace


def make_load_trace(n=300, stride=64, base=1 << 20, pc=7, dep_on_prev=False):
    trace = Trace("loads")
    addr = base
    last_load = None
    for i in range(n):
        if i % 5 == 0:
            dep = 0
            if dep_on_prev and last_load is not None:
                dep = len(trace) - last_load
            last_load = len(trace)
            trace.append(LOAD, pc, addr, dep)
            addr += stride
        else:
            trace.append(INT, 100 + (i % 10), 0, 1)
    return trace


class TestAloneRunMachineParity:
    def test_provider_spec_reaches_the_cores(self):
        from repro.core.provider import CbpProvider, NullProvider

        bundle = sorted(BUNDLES)[0]
        with_cbp = run_application_alone(
            bundle, 0, scale=SCALE, provider_spec=("cbp", {"entries": 64})
        )
        assert all(isinstance(p, CbpProvider) for p in with_cbp.providers)
        without = run_application_alone(bundle, 0, scale=SCALE)
        assert all(isinstance(p, NullProvider) for p in without.providers)

    def test_scheduler_kwargs_reach_the_scheduler(self):
        bundle = sorted(BUNDLES)[0]
        # An unknown kwarg must now blow up instead of being dropped.
        try:
            run_application_alone(
                bundle, 0, scale=SCALE,
                scheduler_kwargs={"definitely_not_a_kwarg": 1},
            )
        except TypeError:
            pass
        else:
            raise AssertionError("scheduler_kwargs were silently dropped")


class TestOccupancySampling:
    def test_idle_edges_are_sampled(self):
        """With no DRAM traffic at all, occupancy must read 0, not 0/0."""
        config = SystemConfig(cores=2)
        traces = [make_compute_trace(300, pc_base=i * 100) for i in range(2)]
        result = System(config, traces).run()
        for channel in result.channels:
            assert channel.queue_samples > 0
            assert channel.queue_occupancy_sum == 0

    def test_mean_occupancy_includes_idle_cycles(self):
        """A short burst of loads cannot report burst-only occupancy."""
        config = SystemConfig(cores=2)
        traces = [
            make_load_trace(400, stride=4096, dep_on_prev=True),
            make_compute_trace(400, pc_base=900),
        ]
        result = System(config, traces).run()
        total_samples = sum(c.queue_samples for c in result.channels)
        # Every channel samples every DRAM edge it reaches, so the sample
        # count tracks the DRAM clock, not the number of busy cycles.
        ratio = config.dram.cpu_ratio
        expected_edges = result.cycles // ratio
        assert total_samples >= expected_edges * len(result.channels) * 0.9


class TestBlockedCycleFraction:
    @staticmethod
    def _stats(blocked_dram: int) -> CoreStats:
        stats = CoreStats()
        stats.blocked_dram_cycles = blocked_dram
        return stats

    def test_idle_cores_are_excluded(self):
        busy = self._stats(40)
        idle = self._stats(0)
        result = SimResult(
            label="t",
            cycles=100,
            finish_cycles=[100, 100],
            committed=[50, 0],
            core_stats=[busy, idle],
        )
        assert result.blocked_cycle_fraction() == 40 / 100

    def test_all_idle_is_zero(self):
        result = SimResult(
            label="t",
            cycles=100,
            finish_cycles=[100],
            committed=[0],
            core_stats=[self._stats(0)],
        )
        assert result.blocked_cycle_fraction() == 0.0

    def test_without_core_stats_is_zero(self):
        result = SimResult(
            label="t", cycles=10, finish_cycles=[10], committed=[5]
        )
        assert result.blocked_cycle_fraction() == 0.0
