"""Whole-program semantic analyzer: rules, fixtures, and the repo contract.

Three layers:

* unit tests of the shared infrastructure (module graph, CFG,
  suppressions) on inline sources;
* the seeded-fixture contract — every SEM rule fires on its module in
  ``tests/fixtures/semantic_hazards/`` and stays silent on the clean
  counter-examples;
* the repo contract — ``src/repro`` analyzes clean at HEAD, and an
  unregistered mutable field injected into a copy of the real
  ``ChannelController`` is caught (the det-state audit does real work,
  not just fixture work).
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.semantic import (
    SEMANTIC_RULES,
    analyze_paths,
    analyze_source,
    main,
)
from repro.analysis.semantic.cfg import build_cfg, reachable_avoiding
from repro.analysis.semantic.modgraph import ModuleGraph, module_name_for
from repro.analysis.suppress import known_rule_ids, parse_suppressions

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
FIXTURES = REPO / "tests" / "fixtures" / "semantic_hazards"


def rules_by_file(report):
    out: dict[str, set[str]] = {}
    for f in report.findings:
        out.setdefault(Path(f.path).name, set()).add(f.rule)
    return out


# --------------------------------------------------------------- infrastructure


class TestModuleGraph:
    def test_module_name_is_position_independent(self, tmp_path):
        pkg = tmp_path / "somewhere" / "repro" / "dram"
        pkg.mkdir(parents=True)
        for d in (pkg.parent, pkg):
            (d / "__init__.py").write_text("")
        mod = pkg / "bank.py"
        mod.write_text("x = 1\n")
        assert module_name_for(mod) == "repro.dram.bank"

    def test_mro_resolves_across_modules(self, tmp_path):
        pkg = tmp_path / "p"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "base.py").write_text("class Base:\n    def f(self): pass\n")
        (pkg / "sub.py").write_text(
            "from p.base import Base\n\nclass Sub(Base):\n    pass\n"
        )
        graph = ModuleGraph.load(sorted(pkg.rglob("*.py")))
        sub = graph.classes["p.sub.Sub"]
        assert [c.name for c in graph.mro(sub)] == ["Sub", "Base"]
        assert graph.lookup_method(sub, "f") is not None
        assert graph.is_subclass_of(sub, "Base")

    def test_syntax_error_is_an_error_not_a_crash(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        graph = ModuleGraph.load([bad])
        assert graph.errors and not graph.modules


class TestCfg:
    def test_every_path_must_pass_a_guard(self):
        src = textwrap.dedent("""
            def f(xs):
                for x in xs:
                    if x.ok:
                        return x
                return None
        """)
        import ast

        fn = ast.parse(src).body[0]
        cfg = build_cfg(fn)
        assert len(cfg.returns()) == 2
        # Both returns are reachable with nothing blocked.
        assert all(r in reachable_avoiding(cfg, set()) for r in cfg.returns())
        # Blocking the loop header blocks everything downstream of it —
        # including the fall-through return, whose only path re-enters
        # the header to test the exhausted iterator.
        loop = {n for n in cfg.nodes if n.kind == "loop"}
        assert loop
        assert not any(r in reachable_avoiding(cfg, loop)
                       for r in cfg.returns())
        # Blocking only the if-branch keeps the fall-through return live
        # but cuts off the in-loop return.
        branch = {n for n in cfg.nodes if n.kind == "branch"}
        assert branch
        live = [r for r in cfg.returns()
                if r in reachable_avoiding(cfg, branch)]
        assert len(live) == 1


class TestSuppressParsing:
    def test_file_wide_and_line_mentions(self):
        smap = parse_suppressions(
            "# repro-lint: disable-file=SEM001 rationale\n"
            "x = 1  # repro-lint: disable=SEM020\n"
        )
        assert smap.disabled(99, "SEM001")
        assert smap.disabled(2, "SEM020")
        assert not smap.disabled(1, "SEM020")
        assert {r for _, r in smap.mentions} == {"SEM001", "SEM020"}

    def test_known_rule_ids_cover_both_tools(self):
        known = known_rule_ids()
        assert "DET001" in known
        assert "SUP001" in known
        assert set(SEMANTIC_RULES) <= known


# ------------------------------------------------------------- seeded fixtures


class TestHazardFixtures:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES])

    def test_exit_state(self, report):
        assert not report.ok
        assert not report.errors

    def test_every_sem_rule_fires(self, report):
        assert {f.rule for f in report.findings} == set(SEMANTIC_RULES)

    def test_rule_by_rule_file_mapping(self, report):
        by_file = rules_by_file(report)
        assert by_file["sem001_mixed_arith.py"] == {"SEM001"}
        assert by_file["sem002_mixed_compare.py"] == {"SEM002"}
        assert by_file["sem003_mixed_dataflow.py"] == {"SEM003"}
        assert by_file["sem010_uncovered_state.py"] == {"SEM010"}
        assert by_file["sem020_unguarded_issue.py"] == {"SEM020"}
        assert by_file["sem021_direct_mutation.py"] == {"SEM021"}
        assert by_file["sem022_missing_override.py"] == {"SEM022"}

    def test_clean_counter_examples_stay_clean(self, report):
        by_file = rules_by_file(report)
        for name in ("clean.py", "_base.py", "__init__.py", "suppressed.py"):
            assert name not in by_file, by_file.get(name)

    def test_suppressed_finding_is_counted_not_reported(self, report):
        sup = [f for f in report.suppressed
               if Path(f.path).name == "suppressed.py"]
        assert [f.rule for f in sup] == ["SEM001"]

    def test_sem010_names_the_field(self, report):
        f = next(f for f in report.findings if f.rule == "SEM010")
        assert "sneaky_counter" in f.message

    def test_sem022_both_clauses(self, report):
        msgs = [f.message for f in report.findings if f.rule == "SEM022"]
        assert any("name" in m for m in msgs)
        assert any("select" in m for m in msgs)


# ---------------------------------------------------------------- repo contract


class TestRepoContract:
    def test_src_repro_is_clean_at_head(self):
        report = analyze_paths([SRC])
        assert report.files > 80
        assert not report.errors
        assert not report.findings, "\n".join(
            f.render() for f in report.findings
        )

    def test_cli_exit_codes(self):
        assert main([str(SRC)]) == 0
        assert main([str(FIXTURES)]) == 1

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in SEMANTIC_RULES:
            assert rule in out

    def test_select_filters_passes(self):
        report = analyze_paths([FIXTURES], select={"SEM021"})
        assert {f.rule for f in report.findings} == {"SEM021"}

    def test_injected_controller_field_is_caught(self, tmp_path):
        """The audit catches new unregistered state on the REAL controller.

        Copies src/repro wholesale (module names derive from the
        __init__.py chain, so the copy analyzes identically), injects a
        mutable field into ChannelController.enqueue, and expects SEM010
        to name it.
        """
        tree = tmp_path / "repro"
        shutil.copytree(SRC, tree)
        controller = tree / "dram" / "controller.py"
        source = controller.read_text()
        anchor = "txn.seq = self._seq"
        assert anchor in source
        source = source.replace(
            anchor, anchor + "\n        self.sneaky_probe = txn.seq", 1
        )
        controller.write_text(source)

        baseline = analyze_paths([tree.parent])  # sanity: only our injection
        assert [f.rule for f in baseline.findings] == ["SEM010"]
        finding = baseline.findings[0]
        assert "ChannelController" in finding.message
        assert "sneaky_probe" in finding.message

    def test_injected_field_becomes_clean_when_registered(self, tmp_path):
        """Folding the injected field into det_state() clears the finding."""
        tree = tmp_path / "repro"
        shutil.copytree(SRC, tree)
        controller = tree / "dram" / "controller.py"
        source = controller.read_text()
        anchor = "txn.seq = self._seq"
        source = source.replace(
            anchor, anchor + "\n        self.sneaky_probe = txn.seq", 1
        )
        det_anchor = "values += self.timing.det_state()"
        assert det_anchor in source
        source = source.replace(
            det_anchor,
            "values.append(self.sneaky_probe)\n        " + det_anchor,
            1,
        )
        controller.write_text(source)
        report = analyze_paths([tree.parent])
        assert not report.findings


# -------------------------------------------------------------- inline sources


class TestAnalyzeSource:
    def test_mixed_arith_inline(self):
        report = analyze_source(
            "def f(cpu_now, dram_now):\n    return cpu_now - dram_now\n"
        )
        assert [f.rule for f in report.findings] == ["SEM001"]

    def test_conversion_is_sanctioned(self):
        report = analyze_source(
            "def f(cpu_now, dram_wake, cpu_ratio):\n"
            "    return cpu_now >= dram_wake * cpu_ratio\n"
        )
        assert not report.findings

    def test_dimensionless_absorbs(self):
        report = analyze_source(
            "def f(cpu_now):\n    return cpu_now + 5\n"
        )
        assert not report.findings
