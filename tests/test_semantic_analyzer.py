"""Whole-program semantic analyzer: rules, fixtures, and the repo contract.

Three layers:

* unit tests of the shared infrastructure (module graph, CFG,
  suppressions) on inline sources;
* the seeded-fixture contract — every SEM rule fires on its module in
  ``tests/fixtures/semantic_hazards/`` and stays silent on the clean
  counter-examples;
* the repo contract — ``src/repro`` analyzes clean at HEAD, and an
  unregistered mutable field injected into a copy of the real
  ``ChannelController`` is caught (the det-state audit does real work,
  not just fixture work).
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import iter_python_files
from repro.analysis.semantic import (
    SEMANTIC_RULES,
    analyze_paths,
    analyze_source,
    main,
)
from repro.analysis.semantic.batchability import build_report
from repro.analysis.semantic.cfg import build_cfg, reachable_avoiding
from repro.analysis.semantic.domains import (
    ATTR_SEEDS,
    CPU,
    DRAM,
    NS,
    CycleDomainPass,
    seed_attr_domains_from_types,
)
from repro.analysis.semantic.effects import classify, infer_effects
from repro.analysis.semantic.modgraph import ModuleGraph, module_name_for
from repro.analysis.suppress import known_rule_ids, parse_suppressions

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
FIXTURES = REPO / "tests" / "fixtures" / "semantic_hazards"


def rules_by_file(report):
    out: dict[str, set[str]] = {}
    for f in report.findings:
        out.setdefault(Path(f.path).name, set()).add(f.rule)
    return out


# --------------------------------------------------------------- infrastructure


class TestModuleGraph:
    def test_module_name_is_position_independent(self, tmp_path):
        pkg = tmp_path / "somewhere" / "repro" / "dram"
        pkg.mkdir(parents=True)
        for d in (pkg.parent, pkg):
            (d / "__init__.py").write_text("")
        mod = pkg / "bank.py"
        mod.write_text("x = 1\n")
        assert module_name_for(mod) == "repro.dram.bank"

    def test_mro_resolves_across_modules(self, tmp_path):
        pkg = tmp_path / "p"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "base.py").write_text("class Base:\n    def f(self): pass\n")
        (pkg / "sub.py").write_text(
            "from p.base import Base\n\nclass Sub(Base):\n    pass\n"
        )
        graph = ModuleGraph.load(sorted(pkg.rglob("*.py")))
        sub = graph.classes["p.sub.Sub"]
        assert [c.name for c in graph.mro(sub)] == ["Sub", "Base"]
        assert graph.lookup_method(sub, "f") is not None
        assert graph.is_subclass_of(sub, "Base")

    def test_syntax_error_is_an_error_not_a_crash(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        graph = ModuleGraph.load([bad])
        assert graph.errors and not graph.modules


class TestCfg:
    def test_every_path_must_pass_a_guard(self):
        src = textwrap.dedent("""
            def f(xs):
                for x in xs:
                    if x.ok:
                        return x
                return None
        """)
        import ast

        fn = ast.parse(src).body[0]
        cfg = build_cfg(fn)
        assert len(cfg.returns()) == 2
        # Both returns are reachable with nothing blocked.
        assert all(r in reachable_avoiding(cfg, set()) for r in cfg.returns())
        # Blocking the loop header blocks everything downstream of it —
        # including the fall-through return, whose only path re-enters
        # the header to test the exhausted iterator.
        loop = {n for n in cfg.nodes if n.kind == "loop"}
        assert loop
        assert not any(r in reachable_avoiding(cfg, loop)
                       for r in cfg.returns())
        # Blocking only the if-branch keeps the fall-through return live
        # but cuts off the in-loop return.
        branch = {n for n in cfg.nodes if n.kind == "branch"}
        assert branch
        live = [r for r in cfg.returns()
                if r in reachable_avoiding(cfg, branch)]
        assert len(live) == 1


class TestSuppressParsing:
    def test_file_wide_and_line_mentions(self):
        smap = parse_suppressions(
            "# repro-lint: disable-file=SEM001 rationale\n"
            "x = 1  # repro-lint: disable=SEM020\n"
        )
        assert smap.disabled(99, "SEM001")
        assert smap.disabled(2, "SEM020")
        assert not smap.disabled(1, "SEM020")
        assert {r for _, r in smap.mentions} == {"SEM001", "SEM020"}

    def test_known_rule_ids_cover_both_tools(self):
        known = known_rule_ids()
        assert "DET001" in known
        assert "SUP001" in known
        assert set(SEMANTIC_RULES) <= known


# ------------------------------------------------------------- seeded fixtures


class TestHazardFixtures:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES])

    def test_exit_state(self, report):
        assert not report.ok
        assert not report.errors

    def test_every_sem_rule_fires(self, report):
        # The CONC rules live in tests/fixtures/conc_hazards (see
        # test_concurrency_analyzer.py); together the two hazard
        # packages must exercise the full registry.
        conc = analyze_paths([FIXTURES.parent / "conc_hazards"])
        fired = {f.rule for f in report.findings}
        fired |= {f.rule for f in conc.findings}
        assert fired == set(SEMANTIC_RULES)
        sem_only = {f.rule for f in report.findings}
        assert sem_only == {
            r for r in SEMANTIC_RULES if r.startswith("SEM")
        }

    def test_rule_by_rule_file_mapping(self, report):
        by_file = rules_by_file(report)
        assert by_file["sem001_mixed_arith.py"] == {"SEM001"}
        assert by_file["sem002_mixed_compare.py"] == {"SEM002"}
        assert by_file["sem003_mixed_dataflow.py"] == {"SEM003"}
        assert by_file["sem010_uncovered_state.py"] == {"SEM010"}
        assert by_file["sem020_unguarded_issue.py"] == {"SEM020"}
        assert by_file["sem021_direct_mutation.py"] == {"SEM021"}
        assert by_file["sem022_missing_override.py"] == {"SEM022"}
        assert by_file["sem030_undeclared_mutation.py"] == {"SEM030"}
        assert by_file["sem031_rng_in_hook.py"] == {"SEM031"}
        assert by_file["sem032_uncertified_batch.py"] == {"SEM032"}

    def test_clean_counter_examples_stay_clean(self, report):
        by_file = rules_by_file(report)
        for name in ("clean.py", "_base.py", "__init__.py", "suppressed.py"):
            assert name not in by_file, by_file.get(name)

    def test_suppressed_finding_is_counted_not_reported(self, report):
        sup = [f for f in report.suppressed
               if Path(f.path).name == "suppressed.py"]
        assert [f.rule for f in sup] == ["SEM001"]

    def test_sem010_names_the_field(self, report):
        f = next(f for f in report.findings if f.rule == "SEM010")
        assert "sneaky_counter" in f.message

    def test_sem022_both_clauses(self, report):
        msgs = [f.message for f in report.findings if f.rule == "SEM022"]
        assert any("name" in m for m in msgs)
        assert any("select" in m for m in msgs)

    def test_sem020_mention_without_ordering_still_fires(self, report):
        # AgeLoggingScheduler sums txn.seq into a stat but never orders
        # by it; a token mention alone must not satisfy the guard.
        msgs = [f.message for f in report.findings if f.rule == "SEM020"]
        assert any("AgeLoggingScheduler" in m for m in msgs)
        assert any("GreedyRowHitScheduler" in m for m in msgs)

    def test_sem020_key_helper_ordering_counts_as_guard(self, tmp_path):
        # The TCM shape: the ordering comparison is on a local returned
        # by an age-bearing self-helper.  Must stay clean.
        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent("""
            class Scheduler:
                def select(self, candidates, controller, now):
                    raise NotImplementedError

            class KeyHelperScheduler(Scheduler):
                name = "key-helper"

                def _key(self, cand):
                    return (not cand.is_cas, cand.txn.seq)

                def select(self, candidates, controller, now):
                    best = None
                    best_key = None
                    for cand in candidates:
                        key = self._key(cand)
                        if best is None or key < best_key:
                            best = cand
                            best_key = key
                    return best
        """))
        report = analyze_paths([tmp_path])
        assert not [f for f in report.findings if f.rule == "SEM020"]


# ---------------------------------------------------------------- repo contract


class TestRepoContract:
    def test_src_repro_is_clean_at_head(self):
        report = analyze_paths([SRC])
        assert report.files > 80
        assert not report.errors
        assert not report.findings, "\n".join(
            f.render() for f in report.findings
        )

    def test_cli_exit_codes(self):
        assert main([str(SRC)]) == 0
        assert main([str(FIXTURES)]) == 1

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in SEMANTIC_RULES:
            assert rule in out

    def test_select_filters_passes(self):
        report = analyze_paths([FIXTURES], select={"SEM021"})
        assert {f.rule for f in report.findings} == {"SEM021"}

    def test_injected_controller_field_is_caught(self, tmp_path):
        """The audit catches new unregistered state on the REAL controller.

        Copies src/repro wholesale (module names derive from the
        __init__.py chain, so the copy analyzes identically), injects a
        mutable field into ChannelController.enqueue, and expects SEM010
        to name it.
        """
        tree = tmp_path / "repro"
        shutil.copytree(SRC, tree)
        controller = tree / "dram" / "controller.py"
        source = controller.read_text()
        anchor = "txn.seq = self._seq"
        assert anchor in source
        source = source.replace(
            anchor, anchor + "\n        self.sneaky_probe = txn.seq", 1
        )
        controller.write_text(source)

        baseline = analyze_paths([tree.parent])  # sanity: only our injection
        assert [f.rule for f in baseline.findings] == ["SEM010"]
        finding = baseline.findings[0]
        assert "ChannelController" in finding.message
        assert "sneaky_probe" in finding.message

    def test_injected_purity_violation_caught_by_sem030(self, tmp_path):
        """A mutation smuggled into a certified-pure method is caught.

        ``next_wake`` carries a window-invariance certificate; bumping
        the (det_state-covered, so SEM010-silent) ``_seq`` counter
        inside it must trip SEM030 — both on ``next_wake`` itself and,
        via interprocedural propagation, on ``next_wake_window`` (also
        certified pure), whose slow path calls it — and nothing else.
        """
        tree = tmp_path / "repro"
        shutil.copytree(SRC, tree)
        controller = tree / "dram" / "controller.py"
        source = controller.read_text()
        anchor = ("if self.read_queue or self.write_queue "
                  "or any(self._refresh_due):")
        assert source.count(anchor) == 1
        source = source.replace(
            anchor, "self._seq += 1\n        " + anchor, 1
        )
        controller.write_text(source)
        report = analyze_paths([tree.parent])
        assert [f.rule for f in report.findings] == ["SEM030", "SEM030"]
        flagged = {f.message.split("(")[0] for f in report.findings}
        for finding in report.findings:
            assert "_seq" in finding.message
        assert any("next_wake_window" in f.message for f in report.findings)
        assert len(flagged) == 2

    def test_injected_field_becomes_clean_when_registered(self, tmp_path):
        """Folding the injected field into det_state() clears the finding."""
        tree = tmp_path / "repro"
        shutil.copytree(SRC, tree)
        controller = tree / "dram" / "controller.py"
        source = controller.read_text()
        anchor = "txn.seq = self._seq"
        source = source.replace(
            anchor, anchor + "\n        self.sneaky_probe = txn.seq", 1
        )
        det_anchor = "values += self.timing.det_state()"
        assert det_anchor in source
        source = source.replace(
            det_anchor,
            "values.append(self.sneaky_probe)\n        " + det_anchor,
            1,
        )
        controller.write_text(source)
        report = analyze_paths([tree.parent])
        assert not report.findings


# ------------------------------------------------------ type-domain seeding


class TestTypeDomainSeeding:
    """Cycle-domain seeds harvested from the unit-bearing type aliases
    (``DramCycles``/``CpuCycles``/``Nanos`` in :mod:`repro.config`)
    rather than hand-written name tables."""

    def _graph(self, tmp_path, body):
        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent(body))
        return ModuleGraph.load([mod])

    def test_src_annotations_seed_the_timing_fields(self):
        graph = ModuleGraph.load(iter_python_files([SRC]))
        seeds = seed_attr_domains_from_types(graph)
        # Dataclass field, optional field, property return, annotated
        # instance attribute — one of each spelling.
        assert seeds["tRCD"] == DRAM
        assert seeds["tFAW"] == DRAM  # DramCycles | None
        assert seeds["effective_tFAW"] == DRAM  # property return
        assert seeds["_tFAW"] == DRAM  # self._tFAW: DramCycles = ...
        assert seeds["refresh_interval_us"] == NS
        # The hand-written table no longer duplicates the annotations.
        assert "tRCD" not in ATTR_SEEDS
        assert "effective_tFAW" not in ATTR_SEEDS

    def test_renamed_annotated_field_keeps_its_clock(self, tmp_path):
        # The point of type-based seeding: rename a timing field and the
        # analyzer still knows its clock, with no seed-table edit.
        graph = self._graph(tmp_path, """
            DramCycles = int

            class Timings:
                t_renamed: DramCycles = 7

            class Uses:
                def f(self, timing, cpu_now):
                    return cpu_now + timing.t_renamed
        """)
        assert "t_renamed" not in ATTR_SEEDS
        findings = CycleDomainPass().run(graph)
        assert [f.rule for f in findings] == ["SEM001"]

    def test_annotation_spellings(self, tmp_path):
        graph = self._graph(tmp_path, """
            from typing import Optional

            class C:
                a: "DramCycles"
                b: Optional[CpuCycles] = None
                c: Nanos | None = None

                def __init__(self):
                    self.inst: CpuCycles = 0

                @property
                def derived(self) -> DramCycles:
                    return self.a

                def plain(self) -> DramCycles:
                    return self.a
        """)
        seeds = seed_attr_domains_from_types(graph)
        assert seeds["a"] == DRAM
        assert seeds["b"] == CPU
        assert seeds["c"] == NS
        assert seeds["inst"] == CPU
        assert seeds["derived"] == DRAM
        # Only *properties* read like attributes; a plain method's
        # return annotation must not seed its name.
        assert "plain" not in seeds

    def test_conflicting_annotations_drop_the_seed(self, tmp_path):
        graph = self._graph(tmp_path, """
            DramCycles = int
            CpuCycles = int

            class A:
                dual: DramCycles = 1

            class B:
                dual: CpuCycles = 2

            class D:
                solo: DramCycles = 3
        """)
        seeds = seed_attr_domains_from_types(graph)
        assert "dual" not in seeds
        assert seeds["solo"] == DRAM


# ---------------------------------------------------------- effect inference


class TestEffectInference:
    @pytest.fixture(scope="class")
    def table(self, tmp_path_factory):
        mod = tmp_path_factory.mktemp("effects") / "mod.py"
        mod.write_text(textwrap.dedent("""
            class M:
                def __init__(self):
                    self.total = 0
                    self.seen = []

                def peek(self):
                    return self.total

                def bump(self):
                    self.total += 1

                def absorb(self, x):
                    self.seen.append(x)

                def relay(self):
                    self.bump()

                def draw(self):
                    return self._rng.random()

                def report(self):
                    print(self.total)

            class Helper:
                def poke(self, controller):
                    controller.read_queue.append(1)
        """))
        graph = ModuleGraph.load([mod])
        return infer_effects(graph)

    def test_pure_reader_is_window_invariant(self, table):
        eff = table["mod.M.peek"]
        assert eff.pure
        assert classify(eff) == "window-invariant"

    def test_additive_mutation_is_monotone(self, table):
        eff = table["mod.M.bump"]
        assert "total" in eff.mutates
        assert classify(eff) == "monotone-accumulating"

    def test_container_mutation_is_per_cycle_only(self, table):
        assert classify(table["mod.M.absorb"]) == "per-cycle-only"

    def test_effects_propagate_through_self_calls(self, table):
        eff = table["mod.M.relay"]
        assert "total" in eff.mutates
        assert classify(eff) == "monotone-accumulating"

    def test_rng_and_io_demote_to_per_cycle_only(self, table):
        assert table["mod.M.draw"].rng
        assert table["mod.M.report"].io
        assert classify(table["mod.M.draw"]) == "per-cycle-only"
        assert classify(table["mod.M.report"]) == "per-cycle-only"

    def test_foreign_mutation_is_tracked(self, table):
        eff = table["mod.Helper.poke"]
        assert any("read_queue" in d for d in eff.foreign)
        assert classify(eff) == "per-cycle-only"


#: The full registry the report must classify (ROADMAP scheduler set).
SCHEDULER_NAMES = {
    "ahb", "atlas", "casras-crit", "crit-casras", "crit-rl", "fcfs",
    "fr-fcfs", "minimalist", "morse-p", "par-bs", "tcm", "tcm+crit",
}


class TestBatchabilityReport:
    @pytest.fixture(scope="class")
    def report(self):
        graph = ModuleGraph.load(iter_python_files([SRC]))
        return build_report(graph)

    def test_every_hot_class_is_certified(self, report):
        assert set(report["classes"]) == {
            "ChannelController", "MemoryHierarchy", "MemorySystem",
            "OutOfOrderCore",
        }

    def test_every_scheduler_is_certified(self, report):
        assert set(report["schedulers"]) == SCHEDULER_NAMES
        for name, hooks in report["schedulers"].items():
            assert "select" in hooks, name
            assert "det_state" in hooks, name

    def test_known_certificates_hold(self, report):
        cc = report["classes"]["ChannelController"]
        assert cc["next_wake"]["classification"] == "window-invariant"
        assert cc["can_accept"]["classification"] == "window-invariant"
        assert cc["account_idle"]["classification"] == "monotone-accumulating"
        assert cc["step"]["classification"] == "per-cycle-only"
        core = report["classes"]["OutOfOrderCore"]
        assert core["skip_plan"]["classification"] == "window-invariant"
        assert core["step"]["classification"] == "per-cycle-only"
        assert (report["schedulers"]["fcfs"]["select"]["classification"]
                == "window-invariant")

    def test_every_entry_is_fully_classified(self, report):
        kinds = {"window-invariant", "monotone-accumulating",
                 "per-cycle-only"}
        groups = list(report["classes"].values())
        groups += list(report["schedulers"].values())
        for hooks in groups:
            for entry in hooks.values():
                assert entry["classification"] in kinds
                assert entry["line"] > 0
                assert entry["path"]


# ------------------------------------------------------------ incremental cache


class TestIncrementalCache:
    """Shard-wise cache: correct reuse, correct invalidation."""

    def _tree(self, root):
        pkg = root / "pkg"
        for d in (pkg, pkg / "one", pkg / "two"):
            d.mkdir(parents=True, exist_ok=True)
            (d / "__init__.py").write_text("")
        (pkg / "one" / "timing.py").write_text(
            "def f(cpu_now, dram_now):\n    return cpu_now - dram_now\n"
        )
        (pkg / "two" / "uses.py").write_text(
            "from pkg.one.timing import f\n\n\n"
            "def g(cpu_now):\n    return f(cpu_now, 0)\n"
        )
        return pkg

    def test_cold_then_warm_reuses_every_shard(self, tmp_path):
        from repro.analysis.inccache import analyze_paths_cached

        pkg = self._tree(tmp_path)
        cache = tmp_path / "cache"
        cold = analyze_paths_cached([pkg], cache_dir=cache)
        assert not cold.hits and len(cold.misses) == 3
        assert [f.rule for f in cold.report.findings] == ["SEM001"]

        warm = analyze_paths_cached([pkg], cache_dir=cache)
        assert not warm.misses and len(warm.hits) == 3
        assert ([(f.rule, f.path, f.line) for f in warm.report.findings]
                == [(f.rule, f.path, f.line) for f in cold.report.findings])
        # Matches the whole-program answer.
        whole = analyze_paths([pkg])
        assert ([(f.rule, f.line) for f in whole.findings]
                == [(f.rule, f.line) for f in warm.report.findings])

    def test_single_file_change_invalidates_only_dependents(self, tmp_path):
        from repro.analysis.inccache import analyze_paths_cached

        pkg = self._tree(tmp_path)
        cache = tmp_path / "cache"
        analyze_paths_cached([pkg], cache_dir=cache)

        # Editing the leaf package invalidates exactly its own shard.
        leaf = pkg / "two" / "uses.py"
        leaf.write_text(leaf.read_text() + "\n# touched\n")
        after = analyze_paths_cached([pkg], cache_dir=cache)
        assert after.misses == [str((pkg / "two").resolve())]
        assert len(after.hits) == 2

        # Editing a depended-on package also invalidates its importers.
        base = pkg / "one" / "timing.py"
        base.write_text(
            "def f(cpu_now, dram_wake, cpu_ratio):\n"
            "    return cpu_now - dram_wake * cpu_ratio\n"
        )
        fixed = analyze_paths_cached([pkg], cache_dir=cache)
        assert set(fixed.misses) == {
            str((pkg / "one").resolve()), str((pkg / "two").resolve()),
        }
        assert not fixed.report.findings

    def test_select_is_part_of_the_key(self, tmp_path):
        from repro.analysis.inccache import analyze_paths_cached

        pkg = self._tree(tmp_path)
        cache = tmp_path / "cache"
        analyze_paths_cached([pkg], cache_dir=cache)
        narrowed = analyze_paths_cached(
            [pkg], select={"SEM021"}, cache_dir=cache
        )
        assert len(narrowed.misses) == 3
        assert not narrowed.report.findings


# -------------------------------------------------------------- inline sources


class TestAnalyzeSource:
    def test_mixed_arith_inline(self):
        report = analyze_source(
            "def f(cpu_now, dram_now):\n    return cpu_now - dram_now\n"
        )
        assert [f.rule for f in report.findings] == ["SEM001"]

    def test_conversion_is_sanctioned(self):
        report = analyze_source(
            "def f(cpu_now, dram_wake, cpu_ratio):\n"
            "    return cpu_now >= dram_wake * cpu_ratio\n"
        )
        assert not report.findings

    def test_dimensionless_absorbs(self):
        report = analyze_source(
            "def f(cpu_now):\n    return cpu_now + 5\n"
        )
        assert not report.findings
