"""Benchmark: Figure 6: per-class L2-miss latency."""

from repro.experiments import fig6

from conftest import run_and_report


def bench_fig6(benchmark):
    run_and_report(benchmark, fig6.run)
