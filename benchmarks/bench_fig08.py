"""Benchmark: Figure 8: rank sweep, DDR3-1600/2133."""

from repro.experiments import fig8

from conftest import run_and_report


def bench_fig8(benchmark):
    run_and_report(benchmark, fig8.run)
