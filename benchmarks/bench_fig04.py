"""Benchmark: Figure 4: ranked criticality metrics."""

from repro.experiments import fig4

from conftest import run_and_report


def bench_fig4(benchmark):
    run_and_report(benchmark, fig4.run)
