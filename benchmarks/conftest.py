"""Benchmark harness support.

Each bench regenerates one paper figure/table via the experiment modules,
times the full regeneration, prints the rows, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can be assembled from a bench
run.  Scale knobs: REPRO_INSTRUCTIONS (default 12000), REPRO_SEEDS
(default 1), REPRO_APPS (subset of parallel apps).
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_report(benchmark, run_fn, **kwargs):
    """Time one full experiment regeneration and persist its table.

    Alongside each table, a ``<id>.metrics.jsonl`` records the engine's
    per-run observability (wall seconds, simulated cycles/sec, and whether
    each run was simulated or served from the disk cache).
    """
    from repro.sim import engine

    engine.clear_metrics()
    result = benchmark.pedantic(
        lambda: run_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.table()
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    metrics = engine.last_metrics
    if metrics:
        path = RESULTS_DIR / f"{result.experiment_id}.metrics.jsonl"
        path.write_text("".join(json.dumps(m) + "\n" for m in metrics))
        simulated = [m for m in metrics if m["source"] == "run"]
        cached = len(metrics) - len(simulated)
        wall = sum(m["wall_s"] for m in simulated)
        print(
            f"\n[engine] {len(simulated)} simulated ({wall:.1f}s wall), "
            f"{cached} cache hits"
        )
    print("\n" + text)
    return result
