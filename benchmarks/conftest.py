"""Benchmark harness support.

Each bench regenerates one paper figure/table via the experiment modules,
times the full regeneration, prints the rows, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can be assembled from a bench
run.  Scale knobs: REPRO_INSTRUCTIONS (default 12000), REPRO_SEEDS
(default 1), REPRO_APPS (subset of parallel apps).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_report(benchmark, run_fn, **kwargs):
    """Time one full experiment regeneration and persist its table."""
    result = benchmark.pedantic(
        lambda: run_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.table()
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    print("\n" + text)
    return result
