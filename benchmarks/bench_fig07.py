"""Benchmark: Figure 7: criticality with an L2 stream prefetcher."""

from repro.experiments import fig7

from conftest import run_and_report


def bench_fig7(benchmark):
    run_and_report(benchmark, fig7.run)
