"""Benchmark: Section 5.3.2: table reset intervals."""

from repro.experiments import reset

from conftest import run_and_report


def bench_reset(benchmark):
    run_and_report(benchmark, reset.run)
