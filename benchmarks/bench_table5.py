"""Benchmark: Table 5: criticality counter widths."""

from repro.experiments import table5

from conftest import run_and_report


def bench_table5(benchmark):
    run_and_report(benchmark, table5.run)
