"""Benchmark: Table 7: scheduler comparison summary."""

from repro.experiments import table7

from conftest import run_and_report


def bench_table7(benchmark):
    run_and_report(benchmark, table7.run)
