"""Benchmark: ablations — counter modes, excluded predictors, memory-side
rankings (reproduction extension)."""

from repro.experiments import ablation

from conftest import run_and_report


def bench_ablation(benchmark):
    run_and_report(benchmark, ablation.run)
