"""Benchmark: Figure 9: load-queue size sweep."""

from repro.experiments import fig9

from conftest import run_and_report


def bench_fig9(benchmark):
    run_and_report(benchmark, fig9.run)
