"""Benchmark: Figure 5: MaxStallTime table-size sweep."""

from repro.experiments import fig5

from conftest import run_and_report


def bench_fig5(benchmark):
    run_and_report(benchmark, fig5.run)
