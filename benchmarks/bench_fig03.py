"""Benchmark: Figure 3: Binary criticality + CBP size sweep."""

from repro.experiments import fig3

from conftest import run_and_report


def bench_fig3(benchmark):
    run_and_report(benchmark, fig3.run)
