"""Benchmark: Section 5.1: naive forwarding."""

from repro.experiments import naive

from conftest import run_and_report


def bench_naive(benchmark):
    run_and_report(benchmark, naive.run)
