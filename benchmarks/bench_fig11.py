"""Benchmark: Figure 11: MORSE-P commands-checked sweep."""

from repro.experiments import fig11

from conftest import run_and_report


def bench_fig11(benchmark):
    run_and_report(benchmark, fig11.run)
