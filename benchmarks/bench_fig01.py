"""Benchmark: Figure 1: ROB-head blocking under FR-FCFS."""

from repro.experiments import fig1

from conftest import run_and_report


def bench_fig1(benchmark):
    run_and_report(benchmark, fig1.run)
