"""Benchmark: Figure 12: multiprogrammed weighted speedups."""

from repro.experiments import fig12

from conftest import run_and_report


def bench_fig12(benchmark):
    run_and_report(benchmark, fig12.run)
