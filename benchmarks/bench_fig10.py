"""Benchmark: Figure 10: state-of-the-art scheduler comparison."""

from repro.experiments import fig10

from conftest import run_and_report


def bench_fig10(benchmark):
    run_and_report(benchmark, fig10.run)
