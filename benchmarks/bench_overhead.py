"""Benchmark: Section 5.7: storage overhead."""

from repro.experiments import overhead

from conftest import run_and_report


def bench_overhead(benchmark):
    run_and_report(benchmark, overhead.run)
