"""Benchmark: Mechanism validation (extension)."""

from repro.experiments import mechanism

from conftest import run_and_report


def bench_mechanism(benchmark):
    run_and_report(benchmark, mechanism.run)
