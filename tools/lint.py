#!/usr/bin/env python3
"""Standalone entry point for the simulator-specific AST lint pass.

Equivalent to ``python -m repro lint``; works from a plain checkout
without installation.  Exits nonzero when any unsuppressed finding
remains — CI gates on this.

    python tools/lint.py                 # lint src/repro
    python tools/lint.py --list-rules
    python tools/lint.py path/to/file.py --select DET001,EXC001
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
