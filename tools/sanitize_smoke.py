#!/usr/bin/env python3
"""Protocol-sanitizer smoke sweep: every registered scheduler, plus an
injected-violation self-test.

Runs a short mixed workload (one row-buffer-friendly app, one irregular
app) under ``REPRO_SANITIZE=1`` for every scheduler in the registry, so
each policy's full command stream is re-checked by the shadow JEDEC
oracle (see :mod:`repro.analysis.protocol`), including the rolling
four-activate window (tFAW, derived 4×tRRD unless the config tightens
it).  Then deliberately breaks two constraints through the *controller*
path — tRP (zeroing a bank's ``act_ready`` right after a precharge) and
tFAW (erasing the channel's rolling ACTIVATE window so a fifth ACTIVATE
issues inside it) — and asserts the sanitizer catches both, proving the
oracle is actually wired in and not vacuously green.

CI runs this as the ``lint-and-sanitize`` job's second gate.

    python tools/sanitize_smoke.py [--apps fft,radix] [--instructions 1200]
"""

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

os.environ["REPRO_SANITIZE"] = "1"
# The sweep is about protocol checking, not caching; keep it hermetic.
os.environ["REPRO_NO_CACHE"] = "1"


def clean_sweep(apps, instructions) -> int:
    from repro.config import SimScale
    from repro.sched.registry import SCHEDULERS
    from repro.sim.runner import run_parallel_workload

    scale = SimScale(
        instructions_per_core=instructions,
        warmup_instructions=max(200, instructions // 10),
    )
    failures = 0
    for scheduler in sorted(SCHEDULERS):
        for app in apps:
            provider = (
                ("cbp", {"entries": 64})
                if "crit" in scheduler or scheduler == "minimalist"
                else None
            )
            try:
                result = run_parallel_workload(
                    app, scheduler=scheduler, provider_spec=provider, scale=scale
                )
            except AssertionError as exc:
                print(f"FAIL {app}/{scheduler}: {exc}")
                failures += 1
                continue
            print(f"ok   {app}/{scheduler}: {result.cycles:,} cycles")
    return failures


def injected_trp_violation_is_caught() -> bool:
    """Break tRP through the controller path; the sanitizer must object."""
    from repro.analysis.protocol import ProtocolViolation
    from repro.config import DramConfig
    from repro.dram.addressmap import DramLocation
    from repro.dram.controller import ChannelController
    from repro.dram.transaction import Transaction
    from repro.sched.frfcfs import FrFcfsScheduler

    config = DramConfig(channels=1, ranks_per_channel=1, banks_per_rank=2)
    controller = ChannelController(0, config, FrFcfsScheduler())
    assert controller.sanitizer is not None, "REPRO_SANITIZE=1 did not attach"

    def read_to(row, now_start, cycles=400):
        txn = Transaction(0, DramLocation(0, 0, 0, row, 0))
        controller.enqueue(txn, now_start)
        for now in range(now_start, now_start + cycles):
            controller.step(now)
            if txn not in controller.read_queue:
                return now
        raise RuntimeError("read never serviced")

    # Open row 1, read it, then queue a conflicting row so the controller
    # precharges; immediately forge the bank's act_ready bookkeeping to
    # pretend tRP already elapsed.  The next ACTIVATE is then issued too
    # early — only the shadow oracle can notice.
    done = read_to(row=1, now_start=0)
    bank = controller.banks[0][0]
    txn = Transaction(0, DramLocation(0, 0, 0, 2, 0))
    controller.enqueue(txn, done + 1)
    try:
        for now in range(done + 1, done + 400):
            pre_open = bank.open_row
            controller.step(now)
            if pre_open is not None and bank.open_row is None:
                bank.act_ready = 0  # forge: erase the tRP delay
        return False  # no violation raised: sanitizer missed it
    except ProtocolViolation as exc:
        print(f"ok   injected tRP violation caught: {exc}")
        return True


def injected_tfaw_violation_is_caught() -> bool:
    """Erase the four-activate window bookkeeping; the oracle must object."""
    import dataclasses

    from repro.analysis.protocol import ProtocolViolation
    from repro.config import DramConfig
    from repro.dram.addressmap import DramLocation
    from repro.dram.controller import ChannelController
    from repro.dram.transaction import Transaction
    from repro.sched.frfcfs import FrFcfsScheduler

    base = DramConfig(channels=1, ranks_per_channel=1, banks_per_rank=8)
    # A window far wider than tRRD-legal spacing, so wherever command-bus
    # arbitration lands the fifth ACTIVATE, it is inside the window.
    timings = dataclasses.replace(
        base.timings, tFAW=4 * base.timings.tRRD + 200
    )
    config = dataclasses.replace(base, timings=timings)
    controller = ChannelController(0, config, FrFcfsScheduler())
    assert controller.sanitizer is not None, "REPRO_SANITIZE=1 did not attach"

    # Five reads to five distinct banks: each needs its own ACTIVATE.
    for bank in range(5):
        txn = Transaction(0, DramLocation(0, 0, bank, 1, 0))
        controller.enqueue(txn, 0)
    try:
        for now in range(400):
            controller.step(now)
            # Forge: the controller forgets its rolling window, so it
            # spaces ACTIVATEs by tRRD alone — legal per-pair, but the
            # fifth lands inside the widened four-activate window.
            controller.timing.rank_act_history[0].clear()
        return False  # no violation raised: sanitizer missed it
    except ProtocolViolation as exc:
        print(f"ok   injected tFAW violation caught: {exc}")
        return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="fft,radix",
                        help="comma-separated parallel apps (default fft,radix)")
    parser.add_argument("--instructions", type=int, default=1_200)
    args = parser.parse_args()

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    failures = clean_sweep(apps, args.instructions)
    if not injected_trp_violation_is_caught():
        print("FAIL injected tRP violation was NOT caught")
        failures += 1
    if not injected_tfaw_violation_is_caught():
        print("FAIL injected tFAW violation was NOT caught")
        failures += 1
    if failures:
        print(f"{failures} sanitizer smoke failure(s)")
        return 1
    print("sanitizer smoke sweep passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
