#!/usr/bin/env python3
"""Runtime stress for the process-safety contract the analyzer certifies.

``repro analyze --concurrency`` proves statically that every shared
artifact is written through :mod:`repro.util.atomicio`; this harness
proves the *runtime* half of the same contract by racing real writers
and killing them mid-write.  Four gates, run by CI's determinism job:

1. **Cache race** — two processes simulate the same ``RunSpec`` against
   one ``REPRO_CACHE_DIR``.  Whichever writer wins the ``os.replace``,
   the slot must hold one complete pickle and both processes must
   report the same result fingerprint (the payload is a pure function
   of the key, so the race is benign by construction).
2. **SIGKILL mid-write** — a child rewrites one JSON artifact in a hot
   loop and is SIGKILL'd at a random moment, repeatedly.  The target
   must always parse clean as one complete snapshot (old or new, never
   a partial), which is exactly the tmp+fsync+replace guarantee.
3. **Fleet registration race** — N processes register distinct runs
   against one fleet root simultaneously.  All N entries must land and
   ``INDEX.json`` must parse clean (at worst one registration behind).
4. **Run-log interleaving** — N processes append M records each to one
   JSONL log through ``atomicio.append_jsonl``.  Every line must parse
   and every (writer, seq) pair must appear exactly once: ``O_APPEND``
   with one ``os.write`` per record cannot tear.

    python tools/conc_stress.py [--root DIR] [--writers 4] [--records 25]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, _SRC)


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra)
    return env


def _spawn_child(role, *args, env=None, **popen_kwargs):
    return subprocess.Popen(
        [sys.executable, __file__, "--child", role, *map(str, args)],
        env=env or _env(),
        **popen_kwargs,
    )


def _wait_for(path: Path, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not path.exists():
        if time.monotonic() > deadline:
            raise TimeoutError(f"gave up waiting for {path}")
        time.sleep(0.005)


# ------------------------------------------------------------- child roles
#
# Children re-exec this file with ``--child <role>``; a shared "GO" file
# acts as a start barrier so racing children actually overlap.


def _child_cache_run(cache_dir: str, go: str) -> None:
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    os.environ.pop("REPRO_NO_CACHE", None)
    from repro.config import SimScale
    from repro.sim.engine import RunSpec, run_one_cached
    from repro.sim.stats import result_fingerprint

    spec = RunSpec(
        kind="parallel",
        workload="fft",
        scale=SimScale(
            instructions_per_core=800, warmup_instructions=0, seed=11
        ),
    )
    _wait_for(Path(go))
    result = run_one_cached(spec)
    print(result_fingerprint(result))


def _child_rewrite_loop(target: str) -> None:
    from repro.util import atomicio

    generation = 0
    while True:
        generation += 1
        atomicio.write_json(
            target,
            {
                "version": 1,
                "generation": generation,
                "payload": ["x" * 64] * 32,
            },
        )


def _child_register(fleet_root: str, stream_dir: str, go: str) -> None:
    from repro.telemetry.fleet import RunRegistry

    _wait_for(Path(go))
    registry = RunRegistry(fleet_root)
    print(registry.register(stream_dir, label=Path(stream_dir).name))


def _child_append(log: str, writer: str, records: str, go: str) -> None:
    from repro.util import atomicio

    _wait_for(Path(go))
    for seq in range(int(records)):
        atomicio.append_jsonl(log, [{"writer": int(writer), "seq": seq}])


_CHILD_ROLES = {
    "cache-run": _child_cache_run,
    "rewrite-loop": _child_rewrite_loop,
    "register": _child_register,
    "append": _child_append,
}


# ------------------------------------------------------------------- gates


def check_cache_race(root: Path) -> list[str]:
    """Gate 1: racing writers of one cache key leave one clean pickle."""
    from repro.sim.stats import SimResult

    errors = []
    cache_dir = root / "cache"
    go = root / "cache-go"
    procs = [
        _spawn_child(
            "cache-run", cache_dir, go,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(2)
    ]
    go.write_text("go")
    fingerprints = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        if proc.returncode != 0:
            errors.append(f"cache child failed rc={proc.returncode}: {err}")
        else:
            fingerprints.append(out.strip())
    if len(set(fingerprints)) > 1:
        errors.append(f"racing runs diverged: {fingerprints}")
    slots = sorted(cache_dir.glob("*.pkl"))
    if len(slots) != 1:
        errors.append(f"expected one cache slot, found {slots}")
    for slot in slots:
        try:
            cached = pickle.loads(slot.read_bytes())
        except Exception as exc:  # torn pickle IS the failure under test
            errors.append(f"cache slot {slot.name} is torn: {exc!r}")
            continue
        if not isinstance(cached, SimResult):
            errors.append(f"cache slot holds {type(cached).__name__}")
    leftovers = [p.name for p in cache_dir.glob("*.tmp*")]
    if leftovers:
        errors.append(f"unreplaced tmp files in cache: {leftovers}")
    return errors


def check_sigkill_mid_write(root: Path, kills: int = 5) -> list[str]:
    """Gate 2: SIGKILL mid-rewrite leaves old-or-new, never a partial."""
    errors = []
    target = root / "victim" / "index.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    for attempt in range(kills):
        proc = _spawn_child(
            "rewrite-loop", target,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for(target)
            # Let it race through some generations before the kill; vary
            # the delay so the kill lands at different write phases.
            time.sleep(0.05 + 0.03 * attempt)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        try:
            snapshot = json.loads(target.read_text())
        except ValueError as exc:
            errors.append(f"kill #{attempt}: target is torn: {exc!r}")
            continue
        generation = snapshot.get("generation", 0)
        if snapshot.get("version") != 1 or generation < 1:
            errors.append(f"kill #{attempt}: bad snapshot {snapshot.keys()}")
    return errors


def check_fleet_registrations(root: Path, writers: int = 4) -> list[str]:
    """Gate 3: simultaneous registrations all land; INDEX.json parses."""
    from repro.telemetry.fleet import INDEX_NAME, RunRegistry

    errors = []
    fleet_root = root / "fleet"
    go = root / "fleet-go"
    procs = []
    for i in range(writers):
        stream_dir = fleet_root / f"stress-{i}"
        stream_dir.mkdir(parents=True, exist_ok=True)
        procs.append(
            _spawn_child(
                "register", fleet_root, stream_dir, go,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
        )
    go.write_text("go")
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        if proc.returncode != 0:
            errors.append(f"register child rc={proc.returncode}: {err}")
    entries = RunRegistry(fleet_root).entries()
    if len(entries) != writers:
        errors.append(
            f"expected {writers} registrations, found {len(entries)}"
        )
    try:
        index = json.loads((fleet_root / INDEX_NAME).read_text())
    except ValueError as exc:
        errors.append(f"INDEX.json is torn: {exc!r}")
    else:
        # Rebuilders race, so the index may trail the entry files by a
        # registration — but it must never hold a torn or alien run.
        run_ids = {run["run_id"] for run in index.get("runs", [])}
        known = {entry["run_id"] for entry in entries}
        if not run_ids or not run_ids <= known:
            errors.append(f"INDEX.json runs {run_ids} not a snapshot")
    return errors


def check_run_log_interleaving(
    root: Path, writers: int = 4, records: int = 25
) -> list[str]:
    """Gate 4: concurrent appenders never tear or drop a record."""
    errors = []
    log = root / "run_log.jsonl"
    go = root / "log-go"
    procs = [
        _spawn_child(
            "append", log, i, records, go,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        for i in range(writers)
    ]
    go.write_text("go")
    for proc in procs:
        _, err = proc.communicate(timeout=120)
        if proc.returncode != 0:
            errors.append(f"append child rc={proc.returncode}: {err}")
    seen = set()
    for lineno, line in enumerate(log.read_text().splitlines(), start=1):
        try:
            record = json.loads(line)
        except ValueError:
            errors.append(f"line {lineno} is torn: {line[:80]!r}")
            continue
        seen.add((record["writer"], record["seq"]))
    expected = {(w, s) for w in range(writers) for s in range(records)}
    if seen != expected:
        errors.append(
            f"lost {len(expected - seen)} records, "
            f"alien {len(seen - expected)}"
        )
    return errors


GATES = (
    ("cache-race", check_cache_race),
    ("sigkill-mid-write", check_sigkill_mid_write),
    ("fleet-registrations", check_fleet_registrations),
    ("run-log-interleaving", check_run_log_interleaving),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", help="scratch directory (default: temp)")
    parser.add_argument("--writers", type=int, default=4)
    parser.add_argument("--records", type=int, default=25)
    parser.add_argument("--child", choices=sorted(_CHILD_ROLES))
    parser.add_argument("args", nargs="*")
    args = parser.parse_args(argv)

    if args.child:
        _CHILD_ROLES[args.child](*args.args)
        return 0

    with tempfile.TemporaryDirectory(prefix="conc-stress-") as scratch:
        root = Path(args.root) if args.root else Path(scratch)
        root.mkdir(parents=True, exist_ok=True)
        failed = 0
        for name, gate in GATES:
            started = time.monotonic()
            if gate is check_run_log_interleaving:
                errors = gate(root, args.writers, args.records)
            elif gate is check_fleet_registrations:
                errors = gate(root, args.writers)
            else:
                errors = gate(root)
            elapsed = time.monotonic() - started
            status = "PASS" if not errors else "FAIL"
            print(f"[{status}] {name} ({elapsed:.1f}s)")
            for error in errors:
                print(f"    {error}")
            failed += bool(errors)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
