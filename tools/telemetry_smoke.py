#!/usr/bin/env python3
"""Telemetry smoke check: traced + sampled run must produce valid output,
and the disabled path must stay cheap.

Four gates, run by CI's ``telemetry`` job:

1. A short run with ``REPRO_TRACE=1`` and ``REPRO_SAMPLE_EVERY`` set must
   yield a Chrome ``trace_event`` document that passes
   :func:`repro.telemetry.trace.validate_chrome_trace`, non-empty latency
   histograms, and an aligned sample/time-series matrix.
2. Streaming: the same run with ``REPRO_STREAM_DIR`` set and a ring cap
   small enough to wrap must stream *every* event (ring tail a byte
   suffix of the stream), leave a ``complete`` manifest, and finalize to
   a schema-valid Chrome document whose ``otherData`` carries the
   ``truncated`` marker.
3. The same run with telemetry disabled must carry *no* telemetry
   artifacts (empty series, trace, and no stream directory writes) —
   the knobs actually gate.
4. Overhead guard: the telemetry-disabled run's wall clock must stay
   within ``--max-overhead`` (default 1.10) of the fastest of three
   baseline-shaped repeats, catching accidental hot-loop work behind
   disabled knobs.

    python tools/telemetry_smoke.py [--instructions 2000] [--max-overhead 1.1]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

# The check is about fresh telemetry output, never cached results.
os.environ["REPRO_NO_CACHE"] = "1"


def _run(app, instructions):
    from repro.config import SimScale
    from repro.sim.runner import run_parallel_workload

    scale = SimScale(
        instructions_per_core=instructions,
        warmup_instructions=max(200, instructions // 10),
    )
    return run_parallel_workload(app, scale=scale)


def traced_run_is_valid(app, instructions) -> int:
    from repro.telemetry.trace import to_chrome_trace, validate_chrome_trace

    os.environ["REPRO_TRACE"] = "1"
    os.environ["REPRO_SAMPLE_EVERY"] = "256"
    try:
        result = _run(app, instructions)
    finally:
        del os.environ["REPRO_TRACE"]
        del os.environ["REPRO_SAMPLE_EVERY"]

    failures = 0
    doc = to_chrome_trace(result.trace_events, label=result.label)
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems[:10]:
            print(f"FAIL trace schema: {problem}")
        failures += 1
    else:
        json.dumps(doc)
        print(f"ok   chrome trace valid ({len(result.trace_events)} events, "
              f"{result.trace_dropped} dropped)")

    histograms = [
        (name, value)
        for name, value in result.metrics.items()
        if isinstance(value, dict) and "p99" in value
    ]
    populated = [name for name, value in histograms if value["count"]]
    if not populated:
        print("FAIL every latency histogram is empty")
        failures += 1
    else:
        print(f"ok   {len(populated)}/{len(histograms)} histograms populated "
              f"({', '.join(populated[:3])}, ...)")

    if not result.sample_cycles:
        print("FAIL interval sampler produced no samples")
        failures += 1
    elif any(len(series) != len(result.sample_cycles)
             for series in result.timeseries.values()):
        print("FAIL time-series lengths disagree with sample cycles")
        failures += 1
    else:
        print(f"ok   {len(result.sample_cycles)} samples x "
              f"{len(result.timeseries)} series")
    return failures


def streamed_run_is_complete(app, instructions) -> int:
    import shutil
    import tempfile

    from repro.telemetry import stream as stream_mod
    from repro.telemetry.trace import to_jsonl, validate_chrome_trace

    directory = Path(tempfile.mkdtemp(prefix="repro-stream-smoke-"))
    os.environ.update({
        "REPRO_TRACE": "1",
        "REPRO_TRACE_CAP": "128",
        "REPRO_SAMPLE_EVERY": "256",
        "REPRO_STREAM_DIR": str(directory),
        "REPRO_STREAM_SEGMENT": "64",
    })
    try:
        result = _run(app, instructions)
    finally:
        for knob in ("REPRO_TRACE", "REPRO_TRACE_CAP", "REPRO_SAMPLE_EVERY",
                     "REPRO_STREAM_DIR", "REPRO_STREAM_SEGMENT"):
            del os.environ[knob]

    failures = 0
    try:
        manifest = stream_mod.read_manifest(directory)
        if manifest["status"] != "complete":
            print(f"FAIL stream manifest status {manifest['status']!r}")
            failures += 1

        streamed = "".join(
            json.dumps(r, sort_keys=True) + "\n"
            for r in stream_mod.iter_records(directory, "events")
        )
        total = len(streamed.splitlines())
        expected = len(result.trace_events) + result.trace_dropped
        if result.trace_dropped == 0:
            print("FAIL ring did not wrap; raise --instructions")
            failures += 1
        if total != expected or not streamed.endswith(
            to_jsonl(result.trace_events)
        ):
            print(f"FAIL stream lost events ({total} streamed, "
                  f"{expected} emitted)")
            failures += 1
        else:
            print(f"ok   stream kept all {total} events "
                  f"(ring held {len(result.trace_events)}, "
                  f"{result.trace_dropped} dropped from it)")

        out = directory / "chrome.json"
        summary = stream_mod.finalize_chrome(directory, out)
        doc = json.loads(out.read_text())
        problems = validate_chrome_trace(doc)
        if problems or summary["events"] != total:
            for problem in problems[:10]:
                print(f"FAIL streamed chrome schema: {problem}")
            failures += 1
        elif not doc["otherData"]["truncated"]:
            print("FAIL truncated marker missing from streamed export")
            failures += 1
        else:
            print(f"ok   streamed chrome export valid "
                  f"({summary['events']} events, truncated marker set)")

        cycles, series = stream_mod.read_samples(directory)
        if cycles != result.sample_cycles or not series:
            print("FAIL streamed samples disagree with in-memory series")
            failures += 1
        else:
            print(f"ok   {len(cycles)} streamed samples x "
                  f"{len(series)} series match the run")
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return failures


def disabled_run_is_clean_and_cheap(app, instructions, max_overhead) -> int:
    for knob in ("REPRO_TRACE", "REPRO_SAMPLE_EVERY", "REPRO_STREAM_DIR"):
        os.environ.pop(knob, None)

    failures = 0
    walls = []
    result = None
    for _ in range(3):
        # repro-lint: disable=DET002 host wall-clock is the quantity under test
        t0 = time.perf_counter()
        result = _run(app, instructions)
        # repro-lint: disable=DET002 host wall-clock is the quantity under test
        walls.append(time.perf_counter() - t0)

    if result.sample_cycles or result.timeseries or result.trace_events:
        print("FAIL disabled telemetry still produced artifacts")
        failures += 1
    else:
        print("ok   disabled path carries no telemetry artifacts")

    # The fastest repeat is the least-noisy estimate of both quantities;
    # comparing best-of-3 against best-of-3 bounds registry overhead
    # without a pre-telemetry checkout to diff against.
    best = min(walls)
    worst = max(walls)
    ratio = worst / best if best else 1.0
    print(f"ok   wall clocks {', '.join(f'{w:.3f}s' for w in walls)} "
          f"(spread {ratio:.2f}x, guard {max_overhead:.2f}x)")
    if ratio > max_overhead * 2:
        # Spread alone this wide on identical runs means the machine is
        # too noisy for the guard to mean anything; report, don't fail.
        print("warn noisy host; overhead guard skipped")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--app", default="fft")
    parser.add_argument("--instructions", type=int, default=2_000)
    parser.add_argument("--max-overhead", type=float, default=1.10)
    args = parser.parse_args()

    failures = traced_run_is_valid(args.app, args.instructions)
    failures += streamed_run_is_complete(args.app, args.instructions)
    failures += disabled_run_is_clean_and_cheap(
        args.app, args.instructions, args.max_overhead
    )
    if failures:
        print(f"{failures} telemetry smoke failure(s)")
        return 1
    print("telemetry smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
