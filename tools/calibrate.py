"""Calibration helper: per-app operating-point statistics.

Usage: python tools/calibrate.py [app ...]
"""

import sys
import time

import repro
from repro.workloads.parallel import PARALLEL_APP_NAMES


def describe(app, scale=None):
    from repro.config import DEFAULT_SCALE

    scale = scale or DEFAULT_SCALE
    t0 = time.time()
    base = repro.run_parallel_workload(app, scale=scale)
    crit = repro.run_parallel_workload(
        app, scheduler="casras-crit",
        provider_spec=("cbp", {"entries": 64}), scale=scale,
    )
    h = base.hierarchy
    hc = crit.hierarchy
    instr = base.total_committed
    dram_mpki = 1000.0 * h.dram_loads / instr
    ch = base.channels[0]
    dram_cycles = base.cycles / 4
    bus_util = (ch.reads_done + ch.writes_done) * 4 / dram_cycles
    crit_n = hc.crit_latency.count
    noncrit_n = hc.noncrit_latency.count
    crit_frac = (
        crit_n / (crit_n + noncrit_n) if (crit_n + noncrit_n) else 0.0
    )
    def wait(res):
        cs = ns = cn = nn = 0
        for c in res.channels:
            cs += c.crit_wait.total; cn += c.crit_wait.count
            ns += c.noncrit_wait.total; nn += c.noncrit_wait.count
        return (cs / cn if cn else 0, ns / nn if nn else 0, cn, nn)

    bw = wait(base)
    cw = wait(crit)
    print(
        f"{app:9s} ipc={base.system_ipc:5.2f} l1={h.l1_load_hits/max(1,h.loads):4.2f} "
        f"l2hit={h.l2_hit_rate:4.2f} MPKI={dram_mpki:5.1f} "
        f"blkld={base.blocking_load_fraction():5.3f} blkcyc={base.blocked_cycle_fraction():4.2f} "
        f"bus={bus_util:4.2f} qocc={ch.queue_occupancy_sum/max(1,ch.queue_samples):4.1f} "
        f"critfrac={crit_frac:4.2f} "
        f"wait base {bw[0]:.0f}/{bw[1]:.0f} crit {cw[0]:.0f}/{cw[1]:.0f} (n {cw[2]}/{cw[3]}) "
        f"spd={repro.speedup(base, crit):6.3f} t={time.time()-t0:4.1f}s"
    )


if __name__ == "__main__":
    apps = sys.argv[1:] or PARALLEL_APP_NAMES
    for app in apps:
        describe(app)
