"""Multiprogrammed throughput and fairness (paper Section 5.8.2).

Runs one Table 4 four-application bundle on the 4-core / 2-channel
machine under PAR-BS, TCM, and criticality-aware scheduling, and reports
weighted speedup (throughput) and maximum slowdown (fairness), both
normalised against each application running alone under PAR-BS.

    python examples/multiprogrammed_fairness.py [bundle]
"""

import sys

from repro import (
    BUNDLES,
    SimScale,
    maximum_slowdown,
    run_application_alone,
    run_multiprogrammed_workload,
    weighted_speedup,
)

SCALE = SimScale(instructions_per_core=10_000, warmup_instructions=1_000)

SCHEDULERS = [
    ("PAR-BS", "par-bs", None, None),
    ("TCM", "tcm", None, {"threads": 4}),
    ("FR-FCFS", "fr-fcfs", None, None),
    ("MaxStallTime CBP", "casras-crit", ("cbp", {"entries": 64}), None),
    ("TCM+MaxStallTime", "tcm+crit", ("cbp", {"entries": 64}), {"threads": 4}),
]


def main():
    bundle = sys.argv[1] if len(sys.argv) > 1 else "RFGI"
    apps = BUNDLES[bundle]
    print(f"Bundle {bundle}: {', '.join(apps)} (4 cores, 2 channels)\n")

    print("Measuring alone-run IPCs (weighted-speedup denominators) ...")
    alone = []
    for slot in range(4):
        result = run_application_alone(bundle, slot, scale=SCALE)
        alone.append(result.core_ipc(slot))
        print(f"  {apps[slot]:<8} alone IPC {alone[slot]:.3f}")

    print()
    for name, scheduler, spec, kwargs in SCHEDULERS:
        result = run_multiprogrammed_workload(
            bundle, scheduler=scheduler, provider_spec=spec,
            scheduler_kwargs=kwargs, scale=SCALE,
        )
        ws = weighted_speedup(result, alone)
        ms = maximum_slowdown(result, alone)
        print(f"{name:<18} weighted speedup {ws:5.3f}   max slowdown {ms:5.2f}")


if __name__ == "__main__":
    main()
