"""Scheduler shoot-out: every implemented policy on one parallel workload.

Compares FCFS, FR-FCFS, both criticality arrangements, AHB, PAR-BS, TCM,
TCM+Crit, MORSE-P and Crit-RL on the `mg` multigrid workload — the
Figure 10 cast plus the baselines.

    python examples/scheduler_shootout.py [app]
"""

import sys

from repro import SimScale, run_parallel_workload, speedup

SCALE = SimScale(instructions_per_core=10_000, warmup_instructions=1_000)

CBP = ("cbp", {"entries": 64})

CONTENDERS = [
    ("FCFS", "fcfs", None, None),
    ("FR-FCFS", "fr-fcfs", None, None),
    ("Crit-CASRAS + MaxStall CBP", "crit-casras", CBP, None),
    ("CASRAS-Crit + MaxStall CBP", "casras-crit", CBP, None),
    ("AHB (Hur/Lin)", "ahb", None, None),
    ("PAR-BS", "par-bs", None, None),
    ("TCM", "tcm", None, {"threads": 8}),
    ("TCM + MaxStall CBP", "tcm+crit", CBP, {"threads": 8}),
    ("MORSE-P", "morse-p", None, {"commands_checked": 24}),
    ("Crit-RL", "crit-rl", CBP, {"commands_checked": 24}),
]


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "mg"
    print(f"Workload: {app} (8 threads), Table 1/3 machine\n")
    base = run_parallel_workload(app, scheduler="fr-fcfs", scale=SCALE)
    width = max(len(name) for name, *_ in CONTENDERS)
    for name, scheduler, spec, kwargs in CONTENDERS:
        result = run_parallel_workload(
            app, scheduler=scheduler, provider_spec=spec,
            scheduler_kwargs=kwargs, scale=SCALE,
        )
        row_hits = sum(c.row_hit_reads for c in result.channels)
        reads = max(1, sum(c.reads_done for c in result.channels))
        print(
            f"{name:<{width}}  speedup {speedup(base, result):6.3f}x  "
            f"IPC {result.system_ipc:5.2f}  row-hit {row_hits / reads:5.1%}"
        )


if __name__ == "__main__":
    main()
