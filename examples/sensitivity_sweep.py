"""Sensitivity sweep with ASCII charts (paper Section 5.6 style).

Sweeps DRAM device speed and rank count for baseline FR-FCFS and the
MaxStallTime criticality scheduler, rendering the results as text bar
charts via :mod:`repro.sim.report`.

    python examples/sensitivity_sweep.py
"""

from repro import (
    DDR3_1066,
    DDR3_1600,
    DDR3_2133,
    DramConfig,
    SimScale,
    SystemConfig,
    run_parallel_workload,
)
from repro.experiments.common import ExperimentResult
from repro.sim.report import bar_chart

SCALE = SimScale(instructions_per_core=8_000, warmup_instructions=800)
APP = "mg"


def run_point(timings, ranks, scheduler, spec=None):
    config = SystemConfig(
        dram=DramConfig(timings=timings, ranks_per_channel=ranks)
    )
    return run_parallel_workload(
        APP, scheduler=scheduler, provider_spec=spec, config=config,
        scale=SCALE,
    )


def main():
    rows = []
    slowest = None
    for timings in (DDR3_1066, DDR3_1600, DDR3_2133):
        for ranks in (1, 4):
            base = run_point(timings, ranks, "fr-fcfs")
            crit = run_point(timings, ranks, "casras-crit",
                             ("cbp", {"entries": 64}))
            if slowest is None:
                slowest = base.cycles  # 1066 single-rank FR-FCFS
            rows.append({
                "config": f"{timings.name} x{ranks} FR-FCFS",
                "speedup": slowest / base.cycles,
            })
            rows.append({
                "config": f"{timings.name} x{ranks} MaxStall",
                "speedup": slowest / crit.cycles,
            })
    result = ExperimentResult(
        "sweep", f"Device/rank sweep on {APP} (vs slowest baseline)",
        ["config", "speedup"], rows,
    )
    print(result.table())
    print()
    print(bar_chart(result, "config", "speedup", width=36))


if __name__ == "__main__":
    main()
