"""Quickstart: criticality-aware memory scheduling in a dozen lines.

Runs the `fft` parallel workload (8 threads) on the paper's Table 1/3
machine twice — once under baseline FR-FCFS, once under the proposed
CASRAS-Crit scheduler fed by a 64-entry MaxStallTime Commit Block
Predictor — and reports the speedup plus the headline statistics.

    python examples/quickstart.py
"""

from repro import SimScale, run_parallel_workload, speedup

SCALE = SimScale(instructions_per_core=12_000, warmup_instructions=1_200)


def main():
    print("Running fft under FR-FCFS ...")
    base = run_parallel_workload("fft", scheduler="fr-fcfs", scale=SCALE)

    print("Running fft under CASRAS-Crit + MaxStallTime CBP ...")
    crit = run_parallel_workload(
        "fft",
        scheduler="casras-crit",
        provider_spec=("cbp", {"entries": 64}),
        scale=SCALE,
    )

    print()
    print(f"FR-FCFS      : {base.cycles:>9,} cycles  (IPC {base.system_ipc:.2f})")
    print(f"CASRAS-Crit  : {crit.cycles:>9,} cycles  (IPC {crit.system_ipc:.2f})")
    print(f"Speedup      : {speedup(base, crit):.3f}x")
    print()
    print("ROB-head blocking under FR-FCFS (paper Figure 1's quantities):")
    print(f"  blocking loads : {100 * base.blocking_load_fraction():.1f}% of dynamic loads")
    print(f"  blocked cycles : {100 * base.blocked_cycle_fraction():.1f}% of core cycles")
    print()
    h = crit.hierarchy
    print("DRAM-serviced load latency under the criticality scheduler:")
    print(f"  critical     : {h.mean_latency(True):.0f} cycles  "
          f"(n={h.crit_latency.count}, p99={h.crit_latency.percentile(99)})")
    print(f"  non-critical : {h.mean_latency(False):.0f} cycles  "
          f"(n={h.noncrit_latency.count}, p99={h.noncrit_latency.percentile(99)})")


if __name__ == "__main__":
    main()
