"""Building custom workloads and schedulers against the public API.

Constructs hand-written traces — one latency-bound pointer-walking core
sharing a single memory channel with a bandwidth-bound store-streaming
core — and compares FR-FCFS against both criticality arrangements, plus a
user-defined scheduler subclass, reproducing the repository's "mechanism
validation" experiment from first principles.

    python examples/custom_workload.py
"""

from repro import DramConfig, System, SystemConfig
from repro.cpu.instruction import INT, LOAD, STORE, Trace
from repro.sched.base import Scheduler
from repro.sched.registry import SCHEDULERS

N = 20_000


def pointer_walk(core_id: int) -> Trace:
    """Sparse dependent misses: each gates ~120 instructions of work."""
    trace = Trace("pointer-walk")
    addr = (core_id + 1) << 36
    while len(trace) < N:
        for i in range(120):
            trace.append(INT, 1000 + (i % 32), 0, 1 if i else 0)
        trace.append(LOAD, 2000, addr, 0)
        trace.append(INT, 2001, 0, 1)
        addr += (1 << 14) + 1024
    return trace


def store_stream(core_id: int) -> Trace:
    """memset-like line-granular store stream: pure bandwidth."""
    trace = Trace("store-stream")
    addr = (core_id + 1) << 36 | (1 << 35)
    k = 0
    while len(trace) < N:
        trace.append(STORE, 3000 + (k % 8), addr, 0)
        for i in range(4):
            trace.append(INT, 4000 + i, 0, 1 if i else 0)
        addr += 64
        k += 1
    return trace


class RandomishScheduler(Scheduler):
    """A deliberately bad policy: rotate over candidates.

    Demonstrates the scheduler plug-in surface: subclass
    :class:`repro.sched.base.Scheduler`, implement ``select``, register it.
    """

    name = "roundrobin"

    def __init__(self):
        self._turn = 0

    def select(self, candidates, controller, now):
        candidates = self.admissible(candidates, controller)
        if not candidates:
            return None
        self._turn = (self._turn + 1) % len(candidates)
        return candidates[self._turn]


def run(scheduler: str):
    config = SystemConfig(cores=2, dram=DramConfig(channels=1))
    system = System(
        config,
        [pointer_walk(0), store_stream(1)],
        scheduler=scheduler,
        provider_spec=("cbp", {"entries": None}),
    )
    return system.run(max_cycles=20_000_000)


def main():
    SCHEDULERS.setdefault("roundrobin", RandomishScheduler)
    base = run("fr-fcfs")
    print(f"{'scheduler':<14} {'walker cycles':>14} {'streamer cycles':>16}")
    for name in ("fr-fcfs", "casras-crit", "crit-casras", "roundrobin"):
        r = base if name == "fr-fcfs" else run(name)
        mark = ""
        if name != "fr-fcfs":
            mark = f"  (walker speedup {base.finish_cycles[0] / r.finish_cycles[0]:.3f}x)"
        print(f"{name:<14} {r.finish_cycles[0]:>14,} {r.finish_cycles[1]:>16,}{mark}")
    print(
        "\nCrit-CASRAS may preempt the streamer's row-hit trains for the "
        "walker's critical misses; CASRAS-Crit never interrupts a column "
        "burst.  The round-robin strawman shows how much FR-FCFS's row "
        "locality is worth."
    )


if __name__ == "__main__":
    main()
